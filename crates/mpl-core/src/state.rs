//! The pCFG dataflow state `(dfState, pSets, matches)` of §VI.
//!
//! The heavy components live behind [`Shared`] copy-on-write handles:
//! cloning a state is O(#components) reference-count bumps, and each
//! component is deep-copied only when (and if) a successor actually
//! mutates it. See DESIGN §3.12 for why sharing is sound.

use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeSet;
use std::fmt;
use std::hash::{Hash, Hasher};

use mpl_cfg::CfgNodeId;
use mpl_domains::{ConstEnv, ConstraintGraph, LinExpr, NsVar, PsetId, VarId};
use mpl_lang::ast::Expr;
use mpl_procset::ProcRange;

use crate::share::Shared;

/// A send that has been issued but not yet matched (the depth-1
/// aggregation of non-blocking sends sketched in the paper's §X; required
/// for self-exchange patterns such as the NAS-CG transpose, where the
/// whole process set sends and then receives).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingSend {
    /// The send statement's CFG node.
    pub node: CfgNodeId,
    /// The value expression.
    pub value: Expr,
    /// The destination expression.
    pub dest: Expr,
}

/// One process set within the analysis state.
#[derive(Debug, Clone)]
pub struct PsetState {
    /// The set's variable namespace (unique within the state).
    pub id: PsetId,
    /// The CFG node the set is currently at.
    pub node: CfgNodeId,
    /// The ranks in the set.
    pub range: ProcRange,
    /// An issued-but-unmatched send, if any.
    pub pending: Option<PendingSend>,
}

/// The full analysis state at one pCFG node.
///
/// Cloning is cheap (copy-on-write component handles); mutation through
/// the `Shared` fields transparently unshares just the touched component.
#[derive(Debug, Clone)]
pub struct AnalysisState {
    /// The constraint-graph dataflow state (per-set namespaces).
    pub cg: Shared<ConstraintGraph>,
    /// The flat constant environment (constant-propagation client).
    pub consts: Shared<ConstEnv>,
    /// Variables proven *uniform* across their process set (every
    /// process of the set holds the same value). Needed for soundness:
    /// only a uniform condition may steer a whole set through one branch
    /// edge. Never-assigned input variables are uniform by definition
    /// and are not tracked here.
    pub uniform: Shared<BTreeSet<VarId>>,
    /// The process sets, in canonical order.
    pub psets: Vec<Shared<PsetState>>,
    /// Send–receive matches established so far.
    pub matches: Shared<BTreeSet<(CfgNodeId, CfgNodeId)>>,
    next_id: u32,
}

impl AnalysisState {
    /// The initial state: one process set containing `[0..np-1]` at
    /// `entry`, with `np ≥ min_np` assumed.
    #[must_use]
    pub fn initial(entry: CfgNodeId, min_np: i64) -> AnalysisState {
        let mut cg = ConstraintGraph::new();
        cg.assert_le(&NsVar::Zero, &NsVar::Np, -min_np); // np >= min_np
        let p0 = PsetId(0);
        let id0 = NsVar::id_of(p0);
        cg.assert_le(&NsVar::Zero, &id0, 0); // id >= 0
        cg.assert_le(&id0, &NsVar::Np, -1); // id <= np-1
        AnalysisState {
            cg: cg.into(),
            consts: Shared::new(ConstEnv::new()),
            uniform: Shared::new(BTreeSet::new()),
            psets: vec![Shared::new(PsetState {
                id: p0,
                node: entry,
                range: ProcRange::all_procs(),
                pending: None,
            })],
            matches: Shared::new(BTreeSet::new()),
            next_id: 1,
        }
    }

    /// Allocates a fresh process-set id.
    pub fn fresh_id(&mut self) -> PsetId {
        let id = PsetId(self.next_id);
        self.next_id += 1;
        id
    }

    /// Replaces pset `idx` by one or more parts, each cloning the
    /// original's variable namespace, with `id` bounds tightened to the
    /// part's range. Parts are `(range, node, keep_pending)`.
    pub fn split_pset(&mut self, idx: usize, parts: Vec<(ProcRange, CfgNodeId, bool)>) {
        assert!(!parts.is_empty(), "split into zero parts");
        self.resaturate_ranges();
        let old = self.psets.remove(idx);
        for (range, node, keep_pending) in parts {
            let nid = self.fresh_id();
            self.cg.clone_namespace(old.id, nid);
            self.consts.clone_namespace(old.id, nid);
            let copies: Vec<VarId> = self
                .uniform
                .iter()
                .filter(|v| v.namespace() == Some(old.id))
                .map(|v| v.renamed(old.id, nid))
                .collect();
            self.uniform.extend(copies);
            // Assert the part's `id` bounds only when the part is provably
            // non-empty: an empty part's bounds would smuggle the false
            // fact `lb ≤ ub` into the shared constraint graph (e.g. a
            // loop remainder `[i+1..np-1]` forcing `i ≤ np-2`).
            if range.is_empty(&mut self.cg) == Some(false) {
                let idv = VarId::id_of(nid);
                for e in range.lb.exprs() {
                    self.cg.assert_ge_expr(idv, e);
                }
                for e in range.ub.exprs() {
                    self.cg.assert_le_expr(idv, e);
                }
            }
            self.psets.push(Shared::new(PsetState {
                id: nid,
                node,
                range,
                pending: if keep_pending {
                    old.pending.clone()
                } else {
                    None
                },
            }));
        }
        self.cg.drop_namespace(old.id);
        self.consts.drop_namespace(old.id);
        self.uniform.retain(|v| v.namespace() != Some(old.id));
        self.strip_namespace_aliases(old.id);
    }

    /// Refreshes every range bound's alias set against the current
    /// constraint graph. Must be called *before* facts are destroyed
    /// (namespace drops, reassignments) so each bound retains at least
    /// one surviving alias.
    pub fn resaturate_ranges(&mut self) {
        for i in 0..self.psets.len() {
            let mut r = self.psets[i].range.clone();
            r.saturate(&mut self.cg);
            self.psets[i].range = r;
        }
    }

    /// Removes the process set at `idx` entirely (it is provably empty),
    /// dropping its variable namespace and any bound aliases that
    /// referenced it.
    pub fn remove_pset(&mut self, idx: usize) {
        self.resaturate_ranges();
        let dead = self.psets[idx].id;
        self.psets.remove(idx);
        self.cg.drop_namespace(dead);
        self.consts.drop_namespace(dead);
        self.uniform.retain(|v| v.namespace() != Some(dead));
        self.strip_namespace_aliases(dead);
    }

    /// Removes bound aliases that reference variables of a namespace that
    /// no longer exists.
    fn strip_namespace_aliases(&mut self, dead: PsetId) {
        for p in &mut self.psets {
            p.range = strip_range(&p.range, |v| v.namespace() == Some(dead));
        }
    }

    /// Rewrites range-bound aliases after an assignment in namespace `p`:
    /// a shift `x := x + c` translates aliases of `x`; any other write to
    /// `x` invalidates them. Call *before* mutating the constraint graph
    /// when possible so lost aliases can be re-derived.
    pub fn rewrite_aliases_on_assign(&mut self, var: impl Into<VarId>, shift: Option<i64>) {
        let var = var.into();
        for p in &mut self.psets {
            p.range = match shift {
                Some(c) => shift_range(&p.range, var, c),
                None => strip_range(&p.range, |v| v == var),
            };
        }
    }

    /// Drops process sets whose range is provably empty. Returns `true`
    /// if every remaining range's emptiness is known (no "maybe empty"
    /// sets survive).
    pub fn drop_empty_psets(&mut self) -> bool {
        let mut i = 0;
        let mut all_known = true;
        while i < self.psets.len() {
            match self.psets[i].range.is_empty(&mut self.cg) {
                Some(true) => {
                    let dead = self.psets[i].id;
                    self.psets.remove(i);
                    self.cg.drop_namespace(dead);
                    self.consts.drop_namespace(dead);
                    self.uniform.retain(|v| v.namespace() != Some(dead));
                    self.strip_namespace_aliases(dead);
                }
                Some(false) => i += 1,
                None => {
                    all_known = false;
                    i += 1;
                }
            }
        }
        all_known
    }

    /// Merges process sets that sit at the same CFG node with provably
    /// adjacent ranges and no pending sends (§VI "merging of process
    /// sets"). Repeats to a fixpoint.
    pub fn merge_psets(&mut self) {
        loop {
            let mut merged = false;
            'search: for i in 0..self.psets.len() {
                for j in 0..self.psets.len() {
                    if i == j
                        || self.psets[i].node != self.psets[j].node
                        || self.psets[i].pending.is_some()
                        || self.psets[j].pending.is_some()
                    {
                        continue;
                    }
                    let (ri, rj) = (self.psets[i].range.clone(), self.psets[j].range.clone());
                    if let Some(joined) = ri.merge_adjacent(&mut self.cg, &rj) {
                        self.merge_pair(i, j, joined);
                        merged = true;
                        break 'search;
                    }
                }
            }
            if !merged {
                return;
            }
        }
    }

    fn merge_pair(&mut self, i: usize, j: usize, joined: ProcRange) {
        self.resaturate_ranges();
        let (a, b) = (self.psets[i].id, self.psets[j].id);
        let node = self.psets[i].node;
        let m = self.fresh_id();
        // Per-variable join of the two namespaces: project each side down
        // to one namespace renamed to `m`, then join pointwise.
        let mut a_side = self.cg.clone();
        a_side.drop_namespace(b);
        a_side.rename_namespace(a, m);
        let mut b_side = self.cg.clone();
        b_side.drop_namespace(a);
        b_side.rename_namespace(b, m);
        self.cg = a_side.join(&b_side).into();
        let mut ca = {
            let mut c = (*self.consts).clone();
            c.drop_namespace(b);
            c.rename_namespace(a, m)
        };
        let cb = {
            let mut c = (*self.consts).clone();
            c.drop_namespace(a);
            c.rename_namespace(b, m)
        };
        ca = ca.join(&cb);
        // Uniformity across the merged set: both halves uniform and
        // pinned to the same constant.
        let merged_uniform: Vec<VarId> = self
            .uniform
            .iter()
            .filter(|v| v.namespace() == Some(a))
            .filter_map(|&v| {
                let vb = v.renamed(a, b);
                if !self.uniform.contains(&vb) {
                    return None;
                }
                let cva = self.consts.const_of(v)?;
                let cvb = self.consts.const_of(vb)?;
                (cva == cvb).then(|| v.renamed(a, m))
            })
            .collect();
        self.consts = ca.into();
        self.uniform
            .retain(|v| v.namespace() != Some(a) && v.namespace() != Some(b));
        self.uniform.extend(merged_uniform);
        // Remove higher index first.
        let (lo, hi) = (i.min(j), i.max(j));
        self.psets.remove(hi);
        self.psets.remove(lo);
        let mut range = joined;
        range = strip_range(&range, |v| {
            v.namespace() == Some(a) || v.namespace() == Some(b)
        });
        // Assert the merged set's id bounds.
        let idv = VarId::id_of(m);
        for e in range.lb.exprs() {
            self.cg.assert_ge_expr(idv, e);
        }
        for e in range.ub.exprs() {
            self.cg.assert_le_expr(idv, e);
        }
        self.psets.push(Shared::new(PsetState {
            id: m,
            node,
            range,
            pending: None,
        }));
        self.strip_namespace_aliases(a);
        self.strip_namespace_aliases(b);
    }

    /// Renumbers process sets into canonical order (sorted by CFG node,
    /// then by a textual rendering of the range) with sequential ids —
    /// required so recurring pCFG locations compare equal across loop
    /// iterations.
    pub fn renumber_canonical(&mut self) {
        // Cached keys: each range is rendered once, not O(p log p) times.
        self.psets
            .sort_by_cached_key(|p| (p.node, p.range.to_string(), p.pending.is_some()));
        // Already canonical (the steady state once the analysis reaches a
        // loop's fixpoint): every rename below would be the identity, so
        // skip the two O(p) rename sweeps over graph, consts and ranges.
        if self
            .psets
            .iter()
            .enumerate()
            .all(|(k, p)| p.id.0 == k as u32)
        {
            self.next_id = self.psets.len() as u32;
            return;
        }
        // Two-phase rename to avoid collisions. The temporary band sits
        // just below the packed VarId's 16-bit pset-id ceiling; live ids
        // are reset to 0.. right below, so the band is never reached by
        // real allocations.
        const TMP: u32 = 1 << 15;
        let olds: Vec<PsetId> = self.psets.iter().map(|p| p.id).collect();
        for (k, &old) in olds.iter().enumerate() {
            let tmp = PsetId(TMP + k as u32);
            self.rename_everywhere(old, tmp);
        }
        for k in 0..olds.len() {
            let tmp = PsetId(TMP + k as u32);
            let fin = PsetId(k as u32);
            self.rename_everywhere(tmp, fin);
        }
        self.next_id = self.psets.len() as u32;
    }

    fn rename_everywhere(&mut self, from: PsetId, to: PsetId) {
        self.cg.rename_namespace(from, to);
        self.consts = self.consts.rename_namespace(from, to).into();
        let renamed: BTreeSet<VarId> = self.uniform.iter().map(|v| v.renamed(from, to)).collect();
        self.uniform = renamed.into();
        for p in &mut self.psets {
            // Skip untouched sets so their `Shared` handle stays shared.
            let touches = p.id == from
                || p.range
                    .lb
                    .exprs()
                    .iter()
                    .chain(p.range.ub.exprs())
                    .any(|e| e.var.is_some_and(|v| v.namespace() == Some(from)));
            if !touches {
                continue;
            }
            if p.id == from {
                p.id = to;
            }
            p.range = p.range.renamed(from, to);
        }
    }

    /// The pCFG location key: the multiset of (CFG node, has-pending)
    /// over canonical process sets. States at the same location are
    /// widened against each other.
    #[must_use]
    pub fn location_key(&self) -> Vec<(CfgNodeId, bool)> {
        self.psets
            .iter()
            .map(|p| (p.node, p.pending.is_some()))
            .collect()
    }

    /// Widens `self` (the stored state) with `newer` (same location key):
    /// constraint-graph widening, range-bound alias intersection,
    /// constant-env join, match-set union.
    #[must_use]
    pub fn widen_with(&self, newer: &AnalysisState) -> AnalysisState {
        self.widen_with_thresholds(newer, &mpl_domains::DEFAULT_WIDEN_THRESHOLDS)
    }

    /// [`AnalysisState::widen_with`] with an explicit threshold ladder for
    /// the constraint-graph widening (see
    /// [`mpl_domains::ConstraintGraph::widen_with_thresholds`]).
    #[must_use]
    pub fn widen_with_thresholds(
        &self,
        newer: &AnalysisState,
        thresholds: &[i64],
    ) -> AnalysisState {
        debug_assert_eq!(self.location_key(), newer.location_key());
        let mut out = self.clone();
        out.cg = self.cg.widen_with_thresholds(&newer.cg, thresholds).into();
        out.consts = self.consts.join(&newer.consts).into();
        let uniform: BTreeSet<VarId> = self.uniform.intersection(&newer.uniform).cloned().collect();
        out.uniform = uniform.into();
        for (p, q) in out.psets.iter_mut().zip(&newer.psets) {
            p.range = p.range.widen(&q.range);
            debug_assert_eq!(p.pending.is_some(), q.pending.is_some());
        }
        let matches: BTreeSet<(CfgNodeId, CfgNodeId)> =
            self.matches.union(&newer.matches).cloned().collect();
        out.matches = matches.into();
        out.next_id = self.next_id.max(newer.next_id);
        out
    }

    /// True if `self` and `other` carry the same information (used for
    /// fixpoint detection after widening; `other` must be at the same
    /// location).
    ///
    /// Fast path: equal [`AnalysisState::fingerprint`]s mean structural
    /// equality (identical recorded content), which implies the full
    /// semantic check below — so the common no-new-info admission is
    /// O(1). Unequal fingerprints fall back to
    /// [`AnalysisState::same_as_slow`], since structurally different
    /// states can still be semantically equal (one may simply not be
    /// closed yet).
    #[must_use]
    pub fn same_as(&self, other: &AnalysisState) -> bool {
        if self.fingerprint() == other.fingerprint() {
            debug_assert!(
                self.structurally_eq(other),
                "state fingerprint collision: {self} vs {other}"
            );
            return true;
        }
        self.same_as_slow(other)
    }

    /// The full semantic equality check (bidirectional constraint-graph
    /// entailment plus field comparisons) — the pre-fingerprint
    /// [`AnalysisState::same_as`], kept as the fallback and as the test
    /// oracle for the fast path.
    #[must_use]
    pub fn same_as_slow(&self, other: &AnalysisState) -> bool {
        if self.matches != other.matches
            || self.consts != other.consts
            || self.uniform != other.uniform
        {
            return false;
        }
        if self.psets.len() != other.psets.len() {
            return false;
        }
        for (p, q) in self.psets.iter().zip(&other.psets) {
            if p.node != q.node
                || p.range.lb.exprs() != q.range.lb.exprs()
                || p.range.ub.exprs() != q.range.ub.exprs()
                || p.pending != q.pending
            {
                return false;
            }
        }
        let mut a = (*self.cg).clone();
        let mut b = (*other.cg).clone();
        a.entails(&other.cg) && b.entails(&self.cg)
    }

    /// A 64-bit structural fingerprint of the whole state, chaining the
    /// component fingerprints ([`ConstraintGraph::fingerprint`],
    /// [`ConstEnv::fingerprint`]) with the uniform set, process sets
    /// (id, node, range-bound alias sets, pending send) and match set.
    ///
    /// Equal fingerprints are treated as structural equality by
    /// [`AnalysisState::same_as`]; collisions are debug-asserted against.
    /// The hash is deterministic within a process, which is all the
    /// admission dedup needs.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.cg.fingerprint().hash(&mut h);
        self.consts.fingerprint().hash(&mut h);
        self.uniform.len().hash(&mut h);
        for v in self.uniform.iter() {
            v.hash(&mut h);
        }
        self.psets.len().hash(&mut h);
        for p in &self.psets {
            p.id.0.hash(&mut h);
            p.node.hash(&mut h);
            p.range.lb.exprs().hash(&mut h);
            p.range.ub.exprs().hash(&mut h);
            match &p.pending {
                None => 0u8.hash(&mut h),
                Some(pd) => {
                    1u8.hash(&mut h);
                    pd.node.hash(&mut h);
                    pd.value.hash(&mut h);
                    pd.dest.hash(&mut h);
                }
            }
        }
        self.matches.len().hash(&mut h);
        for m in self.matches.iter() {
            m.hash(&mut h);
        }
        h.finish()
    }

    /// A 64-bit hash of the pCFG location — the ordered (CFG node,
    /// has-pending) pairs of [`AnalysisState::location_key`] — without
    /// allocating the key vector. The scheduler interns these into
    /// [`crate::scheduler::LocationKey`]s.
    #[must_use]
    pub fn location_fingerprint(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.psets.len().hash(&mut h);
        for p in &self.psets {
            p.node.hash(&mut h);
            p.pending.is_some().hash(&mut h);
        }
        h.finish()
    }

    /// True if the two states record identical content field by field —
    /// the structural equality that fingerprint equality stands for
    /// (stronger than [`AnalysisState::same_as_slow`], which also
    /// equates states whose graphs close to the same bounds).
    #[must_use]
    pub fn structurally_eq(&self, other: &AnalysisState) -> bool {
        self.matches == other.matches
            && self.consts == other.consts
            && self.uniform == other.uniform
            && self.psets.len() == other.psets.len()
            && self.psets.iter().zip(&other.psets).all(|(p, q)| {
                p.id == q.id
                    && p.node == q.node
                    && p.range.lb.exprs() == q.range.lb.exprs()
                    && p.range.ub.exprs() == q.range.ub.exprs()
                    && p.pending == q.pending
            })
            && self.cg.same_shape(&other.cg)
    }

    /// Estimated heap bytes reachable from this state, skipping
    /// allocations whose identity is already in `seen` — so a store of
    /// CoW states counts each shared component once.
    pub(crate) fn approx_bytes(&self, seen: &mut std::collections::HashSet<usize>) -> usize {
        const BTREE_ENTRY: usize = 24; // rough per-entry node overhead
        let mut total = std::mem::size_of::<AnalysisState>();
        if seen.insert(Shared::heap_id(&self.cg)) {
            total += std::mem::size_of::<ConstraintGraph>() + self.cg.side_bytes();
            let (matrix_id, matrix_bytes) = self.cg.matrix_id_and_bytes();
            if seen.insert(matrix_id) {
                total += matrix_bytes;
            }
        }
        if seen.insert(Shared::heap_id(&self.consts)) {
            total += std::mem::size_of::<ConstEnv>() + self.consts.len() * BTREE_ENTRY;
        }
        if seen.insert(Shared::heap_id(&self.uniform)) {
            total += self.uniform.len() * BTREE_ENTRY;
        }
        if seen.insert(Shared::heap_id(&self.matches)) {
            total += self.matches.len() * BTREE_ENTRY;
        }
        total += self.psets.capacity() * std::mem::size_of::<Shared<PsetState>>();
        for p in &self.psets {
            if seen.insert(Shared::heap_id(p)) {
                total += std::mem::size_of::<PsetState>()
                    + (p.range.lb.exprs().len() + p.range.ub.exprs().len()) * BTREE_ENTRY;
            }
        }
        total
    }

    /// True if any range bound has lost all its aliases (the state can no
    /// longer be represented; the engine reports ⊤).
    #[must_use]
    pub fn any_vacant_range(&self) -> bool {
        self.psets.iter().any(|p| p.range.is_vacant())
    }

    /// The index of the pset with namespace `id`.
    #[must_use]
    pub fn index_of(&self, id: PsetId) -> Option<usize> {
        self.psets.iter().position(|p| p.id == id)
    }
}

fn strip_range(r: &ProcRange, dead: impl Fn(VarId) -> bool) -> ProcRange {
    let keep = |b: &mpl_procset::Bound| {
        let exprs: BTreeSet<LinExpr> = b
            .exprs()
            .iter()
            .filter(|e| e.var.is_none_or(|v| !dead(v)))
            .copied()
            .collect();
        bound_from_set(exprs)
    };
    ProcRange::new(keep(&r.lb), keep(&r.ub))
}

fn shift_range(r: &ProcRange, var: VarId, c: i64) -> ProcRange {
    let fix = |b: &mpl_procset::Bound| {
        let exprs: BTreeSet<LinExpr> = b
            .exprs()
            .iter()
            .map(|e| {
                if e.var == Some(var) {
                    // The variable's value grew by c, so the alias must
                    // shrink by c to denote the same bound value.
                    LinExpr {
                        var: e.var,
                        offset: e.offset - c,
                    }
                } else {
                    *e
                }
            })
            .collect();
        bound_from_set(exprs)
    };
    ProcRange::new(fix(&r.lb), fix(&r.ub))
}

fn bound_from_set(exprs: BTreeSet<LinExpr>) -> mpl_procset::Bound {
    mpl_procset::Bound::from_exprs(exprs)
}

impl fmt::Display for AnalysisState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self
            .psets
            .iter()
            .map(|p| {
                let pend = if p.pending.is_some() { "+pending" } else { "" };
                format!("{}:{}@{}{}", p.id, p.range, p.node, pend)
            })
            .collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_domains::LinExpr;

    fn initial() -> AnalysisState {
        AnalysisState::initial(CfgNodeId(0), 4)
    }

    #[test]
    fn initial_state_has_all_procs_with_id_bounds() {
        let mut st = initial();
        assert_eq!(st.psets.len(), 1);
        let id0 = NsVar::id_of(st.psets[0].id);
        assert!(st.cg.implies_le(&NsVar::Zero, &id0, 0)); // id >= 0
        assert!(st.cg.implies_le(&id0, &NsVar::Np, -1)); // id <= np-1
        assert!(st.cg.implies_le(&NsVar::Zero, &NsVar::Np, -4)); // np >= 4
        assert_eq!(st.psets[0].range.is_empty(&mut st.cg), Some(false));
    }

    #[test]
    fn split_pset_clones_namespace_and_bounds() {
        let mut st = initial();
        let x = NsVar::pset(st.psets[0].id, "x");
        st.cg.assert_eq_const(&x, 9);
        let root = ProcRange::from_exprs(LinExpr::constant(0), LinExpr::constant(0));
        let rest = ProcRange::from_exprs(LinExpr::constant(1), LinExpr::var_plus(NsVar::Np, -1));
        st.split_pset(
            0,
            vec![(root, CfgNodeId(5), false), (rest, CfgNodeId(6), false)],
        );
        assert_eq!(st.psets.len(), 2);
        for p in st.psets.clone() {
            // Each part inherited x = 9 in its own namespace.
            assert_eq!(st.cg.const_of(NsVar::pset(p.id, "x")), Some(9));
        }
        // The singleton part's id is pinned to 0.
        let root_pset = st.psets.iter().find(|p| p.node == CfgNodeId(5)).unwrap().id;
        assert_eq!(st.cg.const_of(NsVar::id_of(root_pset)), Some(0));
    }

    #[test]
    fn split_pset_skips_bounds_of_possibly_empty_parts() {
        let mut st = initial();
        // [i .. np-1] with i unconstrained: emptiness unknown.
        let i = NsVar::pset(st.psets[0].id, "i");
        st.cg.ensure_var(&i);
        let maybe_empty =
            ProcRange::from_exprs(LinExpr::of_var(i.clone()), LinExpr::var_plus(NsVar::Np, -1));
        let rest = ProcRange::from_exprs(LinExpr::constant(0), LinExpr::constant(0));
        st.split_pset(
            0,
            vec![
                (maybe_empty, CfgNodeId(5), false),
                (rest, CfgNodeId(6), false),
            ],
        );
        // The shared graph must not have been poisoned with i <= np-1.
        let mut cg = st.cg.clone();
        assert!(!cg.implies_le(i.renamed(PsetId(0), PsetId(1)), &NsVar::Np, -1));
        assert!(!st.cg.is_bottom());
    }

    #[test]
    fn merge_psets_joins_adjacent_at_same_node() {
        let mut st = initial();
        let a = ProcRange::from_exprs(LinExpr::constant(0), LinExpr::constant(3));
        let b = ProcRange::from_exprs(LinExpr::constant(4), LinExpr::var_plus(NsVar::Np, -1));
        st.split_pset(0, vec![(a, CfgNodeId(7), false), (b, CfgNodeId(7), false)]);
        st.merge_psets();
        assert_eq!(st.psets.len(), 1);
        let merged = &st.psets[0];
        assert_eq!(merged.node, CfgNodeId(7));
        let mut cg = st.cg.clone();
        assert!(merged.range.provably_eq(&mut cg, &ProcRange::all_procs()));
    }

    #[test]
    fn merge_keeps_common_constants_only() {
        let mut st = initial();
        let a = ProcRange::from_exprs(LinExpr::constant(0), LinExpr::constant(0));
        let b = ProcRange::from_exprs(LinExpr::constant(1), LinExpr::constant(1));
        st.split_pset(0, vec![(a, CfgNodeId(7), false), (b, CfgNodeId(7), false)]);
        // Give the two parts different values of y, same value of z.
        let (p0, p1) = (st.psets[0].id, st.psets[1].id);
        st.cg.assign(NsVar::pset(p0, "y"), &LinExpr::constant(1));
        st.cg.assign(NsVar::pset(p1, "y"), &LinExpr::constant(2));
        st.cg.assign(NsVar::pset(p0, "z"), &LinExpr::constant(5));
        st.cg.assign(NsVar::pset(p1, "z"), &LinExpr::constant(5));
        st.merge_psets();
        assert_eq!(st.psets.len(), 1);
        let m = st.psets[0].id;
        assert_eq!(st.cg.const_of(NsVar::pset(m, "y")), None);
        assert_eq!(st.cg.const_of(NsVar::pset(m, "z")), Some(5));
        // Bounds survive: y in [1..2].
        assert!(st.cg.implies_le(NsVar::pset(m, "y"), &NsVar::Zero, 2));
        assert!(st.cg.implies_le(&NsVar::Zero, NsVar::pset(m, "y"), -1));
    }

    #[test]
    fn drop_empty_removes_provably_empty() {
        let mut st = initial();
        let empty =
            ProcRange::from_exprs(LinExpr::of_var(NsVar::Np), LinExpr::var_plus(NsVar::Np, -1));
        let rest = ProcRange::all_procs();
        st.split_pset(
            0,
            vec![(empty, CfgNodeId(5), false), (rest, CfgNodeId(6), false)],
        );
        let all_known = st.drop_empty_psets();
        assert!(all_known);
        assert_eq!(st.psets.len(), 1);
        assert_eq!(st.psets[0].node, CfgNodeId(6));
    }

    #[test]
    fn renumber_canonical_sorts_and_compacts_ids() {
        let mut st = initial();
        let a = ProcRange::from_exprs(LinExpr::constant(0), LinExpr::constant(1));
        let b = ProcRange::from_exprs(LinExpr::constant(2), LinExpr::var_plus(NsVar::Np, -1));
        st.split_pset(0, vec![(b, CfgNodeId(9), false), (a, CfgNodeId(3), false)]);
        st.renumber_canonical();
        // Sorted by CFG node: node 3 first, ids sequential from 0.
        assert_eq!(st.psets[0].node, CfgNodeId(3));
        assert_eq!(st.psets[0].id, PsetId(0));
        assert_eq!(st.psets[1].id, PsetId(1));
        // Constraints moved with the renaming.
        let mut cg = st.cg.clone();
        assert!(cg.implies_le(NsVar::id_of(PsetId(0)), &NsVar::Zero, 1));
    }

    #[test]
    fn merge_psets_is_idempotent() {
        let mut st = initial();
        let a = ProcRange::from_exprs(LinExpr::constant(0), LinExpr::constant(3));
        let b = ProcRange::from_exprs(LinExpr::constant(4), LinExpr::var_plus(NsVar::Np, -1));
        st.split_pset(0, vec![(a, CfgNodeId(7), false), (b, CfgNodeId(7), false)]);
        st.merge_psets();
        let once = st.clone();
        st.merge_psets();
        assert_eq!(st.psets.len(), once.psets.len());
        assert!(st.same_as(&once));
    }

    #[test]
    fn renumber_canonical_is_idempotent() {
        let mut st = initial();
        let a = ProcRange::from_exprs(LinExpr::constant(0), LinExpr::constant(1));
        let b = ProcRange::from_exprs(LinExpr::constant(2), LinExpr::var_plus(NsVar::Np, -1));
        st.split_pset(0, vec![(b, CfgNodeId(9), false), (a, CfgNodeId(3), false)]);
        st.renumber_canonical();
        let once = st.clone();
        st.renumber_canonical();
        assert_eq!(
            st.psets.iter().map(|p| p.id).collect::<Vec<_>>(),
            once.psets.iter().map(|p| p.id).collect::<Vec<_>>()
        );
        assert!(st.same_as(&once));
    }

    #[test]
    fn location_key_reflects_nodes_and_pendings() {
        let mut st = initial();
        assert_eq!(st.location_key(), vec![(CfgNodeId(0), false)]);
        st.psets[0].pending = Some(PendingSend {
            node: CfgNodeId(2),
            value: Expr::Int(1),
            dest: Expr::Int(0),
        });
        assert_eq!(st.location_key(), vec![(CfgNodeId(0), true)]);
    }

    #[test]
    fn widen_with_same_state_is_fixpoint() {
        let mut st = initial();
        st.renumber_canonical();
        st.resaturate_ranges();
        let w = st.widen_with(&st.clone());
        assert!(w.same_as(&st));
    }

    #[test]
    fn rewrite_aliases_shift_and_strip() {
        let mut st = initial();
        let i = NsVar::pset(st.psets[0].id, "i");
        st.cg.assert_eq_const(&i, 1);
        // Install a range whose ub mentions i.
        st.psets[0].range = ProcRange::from_exprs(LinExpr::constant(0), LinExpr::of_var(i.clone()));
        st.rewrite_aliases_on_assign(&i, Some(1)); // i := i + 1
        assert!(st.psets[0]
            .range
            .ub
            .exprs()
            .contains(&LinExpr::var_plus(i.clone(), -1)));
        st.rewrite_aliases_on_assign(&i, None); // arbitrary overwrite
        assert!(st.psets[0].range.ub.is_vacant());
        assert!(st.any_vacant_range());
    }

    #[test]
    fn remove_pset_preserves_other_namespaces() {
        let mut st = initial();
        let a = ProcRange::from_exprs(LinExpr::constant(0), LinExpr::constant(0));
        let b = ProcRange::from_exprs(LinExpr::constant(1), LinExpr::var_plus(NsVar::Np, -1));
        st.split_pset(0, vec![(a, CfgNodeId(5), false), (b, CfgNodeId(6), false)]);
        let keep = st.psets[1].id;
        st.cg.assert_eq_const(NsVar::pset(keep, "v"), 3);
        st.remove_pset(0);
        assert_eq!(st.psets.len(), 1);
        assert_eq!(st.cg.const_of(NsVar::pset(keep, "v")), Some(3));
    }
}
