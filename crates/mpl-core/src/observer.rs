//! Zero-cost analysis observers.
//!
//! The engine is generic over an [`AnalysisObserver`] and invokes its
//! hooks at every interesting point of the worklist loop (steps, splits,
//! merges, matches, widenings, ⊤). All hooks have empty default bodies,
//! so the default [`NoopObserver`] monomorphizes to nothing — the
//! observed engine compiles to the same code as a hard-wired loop (the
//! `observer_overhead` bench in `mpl-bench` keeps this honest).
//!
//! Three concrete observers cover the existing consumers:
//!
//! * [`TraceObserver`] renders the Fig 5-style human trace (the exact
//!   strings the engine used to push into `AnalysisResult::trace`);
//! * [`StatsObserver`] counts engine events and captures the final
//!   [`crate::result::AnalysisResult`]'s closure statistics;
//! * [`ObserverStack`] composes any number of observers so the CLI and
//!   batch layers can stack `--trace` and `--stats` independently.

use std::fmt;
use std::time::Duration;

use mpl_domains::LinExpr;

use crate::result::{AnalysisResult, MatchEvent, TopReason};
use crate::scheduler::StoredStats;
use crate::state::AnalysisState;

/// Per-phase wall-clock breakdown of one engine run, plus the final
/// location-store footprint.
///
/// The phases partition the worklist loop body. In the sequential
/// (`intra_jobs = 1`) engine: `transfer` (advancing unblocked process
/// sets), `matching` (blocked steps: send–receive matching, ambiguity
/// splits, pending-send promotion), `join_widen` (successor
/// normalization: closure, empty-set dropping, merging, canonical
/// renumbering, bound saturation) and `admission` (dedup / widening
/// against stored states, including the state clones it takes). Under
/// the parallel round executor, stepping happens off-thread, so the
/// main thread's loop body is instead partitioned into `round_wait`
/// (blocked on the worker pool) and `round_merge` (replaying worker
/// results in frontier order), with `join_widen`/`admission` still
/// accounted separately inside the merge. In both modes
/// [`EngineProfile::phase_sum`] covers the loop body, so
/// `phase_sum ≈ total` within a few percent.
///
/// Phase timing is collected only when the observer opts in via
/// [`AnalysisObserver::timing_enabled`] — the timer calls cost a few
/// percent, so the default engine loop skips them entirely. The
/// round/frontier counters are always populated.
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct EngineProfile {
    /// Time advancing unblocked process sets (CFG transfer functions).
    pub transfer: Duration,
    /// Time in blocked steps: matching, ambiguity splits, promotions.
    pub matching: Duration,
    /// Time normalizing successor states (close / merge / renumber /
    /// saturate).
    pub join_widen: Duration,
    /// Time admitting successors (clone + dedup + widening).
    pub admission: Duration,
    /// Wall-clock time of the whole engine run.
    pub total: Duration,
    /// Final footprint of the scheduler's per-location state store.
    pub stored: StoredStats,
    /// Frontier rounds executed (one per worklist drain).
    pub rounds: u64,
    /// Sum of frontier widths over all rounds (so the mean width is
    /// `frontier_total / rounds`).
    pub frontier_total: u64,
    /// Widest frontier observed in any round.
    pub frontier_peak: usize,
    /// Worker threads the round executor was configured with (0 when
    /// the engine ran its sequential inline loop).
    pub par_workers: usize,
    /// Location groups dispatched to the pool across all rounds (the
    /// unit of per-location serialization).
    pub par_groups: u64,
    /// Pool jobs a worker obtained by stealing rather than from its own
    /// deque — a cheap occupancy/balance indicator.
    pub par_steals: u64,
    /// Main-thread wall time blocked on the worker pool (parallel
    /// rounds only).
    pub round_wait: Duration,
    /// Main-thread wall time merging worker results back in frontier
    /// order, excluding the nested `join_widen`/`admission` time
    /// (parallel rounds only).
    pub round_merge: Duration,
}

impl EngineProfile {
    /// The sum of the phase timers covering the worklist loop body:
    /// the four sequential phases plus the parallel-round `round_wait`
    /// and `round_merge` (each mode leaves the other's timers at zero).
    #[must_use]
    pub fn phase_sum(&self) -> Duration {
        self.transfer
            + self.matching
            + self.join_widen
            + self.admission
            + self.round_wait
            + self.round_merge
    }
}

impl fmt::Display for EngineProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "transfer {:?}, match {:?}, join/widen {:?}, admission {:?} \
             (sum {:?} of {:?} total); {} stored locations, ~{} bytes; \
             {} rounds, frontier peak {} mean {:.1}",
            self.transfer,
            self.matching,
            self.join_widen,
            self.admission,
            self.phase_sum(),
            self.total,
            self.stored.locations,
            self.stored.approx_bytes,
            self.rounds,
            self.frontier_peak,
            if self.rounds == 0 {
                0.0
            } else {
                self.frontier_total as f64 / self.rounds as f64
            },
        )?;
        if self.par_workers > 0 {
            write!(
                f,
                "; par {} workers, {} groups, {} steals, wait {:?}, merge {:?}",
                self.par_workers,
                self.par_groups,
                self.par_steals,
                self.round_wait,
                self.round_merge,
            )?;
        }
        Ok(())
    }
}

/// Hooks invoked by the engine's worklist loop.
///
/// Every method has an empty default body: implement only what you need.
/// Hook arguments are passed by reference and are cheap to ignore — the
/// engine never formats or clones anything on an observer's behalf, so a
/// no-op implementation costs nothing.
pub trait AnalysisObserver {
    /// A state was popped from the worklist (`step` is 1-based).
    fn on_step(&mut self, step: u64, st: &AnalysisState) {
        let _ = (step, st);
    }

    /// A blocked send was buffered (§X depth-1 aggregation) on pset
    /// `pset_idx`, observed before the buffering is applied to `st`.
    fn on_promote(&mut self, pset_idx: usize, st: &AnalysisState) {
        let _ = (pset_idx, st);
    }

    /// The state forked on the undecidable comparison `a <=> b` (the §VI
    /// match-ambiguity split).
    fn on_split(&mut self, a: &LinExpr, b: &LinExpr) {
        let _ = (a, b);
    }

    /// Compatible process sets were merged: `before` psets became
    /// `after`.
    fn on_merge(&mut self, before: usize, after: usize) {
        let _ = (before, after);
    }

    /// A send–receive match was established.
    fn on_match(&mut self, event: &MatchEvent) {
        let _ = event;
    }

    /// A matcher-proposed match could not be applied (releasing the
    /// subsets failed); the engine keeps looking.
    fn on_match_rejected(&mut self) {}

    /// A recurring pCFG location was widened after `visits` visits.
    fn on_widen(&mut self, visits: u32, widened: &AnalysisState) {
        let _ = (visits, widened);
    }

    /// The analysis gave up with ⊤ for `reason` (may fire more than once
    /// if several successor states independently hit a budget; the last
    /// reason wins in the result).
    fn on_top(&mut self, reason: &TopReason) {
        let _ = reason;
    }

    /// A state reached the pCFG exit with every set at `Exit`.
    fn on_terminal(&mut self, st: &AnalysisState) {
        let _ = st;
    }

    /// The run finished; `result` is the final [`AnalysisResult`] about
    /// to be returned (trace not yet attached).
    fn on_complete(&mut self, result: &AnalysisResult) {
        let _ = result;
    }

    /// Whether the engine should collect per-phase wall-clock timings for
    /// this observer. Queried once at the start of a run; defaults to
    /// `false` so unobserved runs pay no timer calls.
    fn timing_enabled(&self) -> bool {
        false
    }

    /// The run's [`EngineProfile`]. Fired once per run, after
    /// [`AnalysisObserver::on_complete`]. The phase timers are zero
    /// unless [`AnalysisObserver::timing_enabled`] returned `true`;
    /// `total` and `stored` are always populated.
    fn on_profile(&mut self, profile: &EngineProfile) {
        let _ = profile;
    }
}

/// The default observer: every hook is a no-op. Monomorphized engine
/// code using it is identical to an unobserved loop.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl AnalysisObserver for NoopObserver {}

/// Renders the Fig 5-style trace the engine used to collect inline.
///
/// The strings are byte-identical to the historical `trace: true`
/// output, so `mpl analyze --trace` is unchanged.
#[derive(Debug, Clone, Default)]
pub struct TraceObserver {
    lines: Vec<String>,
}

impl TraceObserver {
    /// An empty trace.
    #[must_use]
    pub fn new() -> TraceObserver {
        TraceObserver::default()
    }

    /// The trace lines collected so far.
    #[must_use]
    pub fn lines(&self) -> &[String] {
        &self.lines
    }

    /// Consumes the observer, returning the collected lines.
    #[must_use]
    pub fn into_lines(self) -> Vec<String> {
        self.lines
    }
}

impl AnalysisObserver for TraceObserver {
    fn on_step(&mut self, step: u64, st: &AnalysisState) {
        self.lines.push(format!("step {step}: {st}"));
    }

    fn on_promote(&mut self, pset_idx: usize, st: &AnalysisState) {
        self.lines
            .push(format!("promote pending send on pset {pset_idx}: {st}"));
    }

    fn on_split(&mut self, a: &LinExpr, b: &LinExpr) {
        self.lines.push(format!("split on {a} <= {b} vs {b} < {a}"));
    }

    fn on_match(&mut self, event: &MatchEvent) {
        self.lines.push(format!("match: {event}"));
    }

    fn on_match_rejected(&mut self) {
        self.lines.push("  (match could not be applied)".to_owned());
    }

    fn on_terminal(&mut self, st: &AnalysisState) {
        self.lines.push(format!("terminal: {st}"));
    }
}

/// Counts of engine events collected by a [`StatsObserver`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct EngineStats {
    /// Worklist states processed.
    pub steps: u64,
    /// Pending-send promotions (§X aggregation).
    pub promotions: u64,
    /// Match-ambiguity forks.
    pub splits: u64,
    /// Process-set merges (count of merge events, not sets removed).
    pub merges: u64,
    /// Established send–receive matches.
    pub matches: u64,
    /// Matcher proposals that could not be applied.
    pub rejected_matches: u64,
    /// Widenings applied at recurring locations.
    pub widenings: u64,
    /// ⊤ events observed (the result reports only the last).
    pub tops: u64,
    /// Terminal states reached.
    pub terminals: u64,
}

impl fmt::Display for EngineStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} steps, {} matches ({} rejected), {} splits, {} merges, \
             {} widenings, {} promotions, {} terminals, {} tops",
            self.steps,
            self.matches,
            self.rejected_matches,
            self.splits,
            self.merges,
            self.widenings,
            self.promotions,
            self.terminals,
            self.tops,
        )
    }
}

/// Counts engine events and captures the final result's closure
/// statistics (the §IX profile quantities measured by
/// [`crate::session::AnalysisSession`]).
#[derive(Debug, Clone, Default)]
pub struct StatsObserver {
    stats: EngineStats,
    closure: Option<mpl_domains::ClosureStats>,
    profile: Option<EngineProfile>,
}

impl StatsObserver {
    /// A fresh, all-zero collector.
    #[must_use]
    pub fn new() -> StatsObserver {
        StatsObserver::default()
    }

    /// The event counts collected so far.
    #[must_use]
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The run's closure-operation statistics, available once the engine
    /// has completed (from [`AnalysisObserver::on_complete`]).
    #[must_use]
    pub fn closure_stats(&self) -> Option<&mpl_domains::ClosureStats> {
        self.closure.as_ref()
    }

    /// The run's per-phase profile, available once the engine has
    /// completed (from [`AnalysisObserver::on_profile`]).
    #[must_use]
    pub fn profile(&self) -> Option<&EngineProfile> {
        self.profile.as_ref()
    }
}

impl AnalysisObserver for StatsObserver {
    fn on_step(&mut self, _step: u64, _st: &AnalysisState) {
        self.stats.steps += 1;
    }

    fn on_promote(&mut self, _pset_idx: usize, _st: &AnalysisState) {
        self.stats.promotions += 1;
    }

    fn on_split(&mut self, _a: &LinExpr, _b: &LinExpr) {
        self.stats.splits += 1;
    }

    fn on_merge(&mut self, _before: usize, _after: usize) {
        self.stats.merges += 1;
    }

    fn on_match(&mut self, _event: &MatchEvent) {
        self.stats.matches += 1;
    }

    fn on_match_rejected(&mut self) {
        self.stats.rejected_matches += 1;
    }

    fn on_widen(&mut self, _visits: u32, _widened: &AnalysisState) {
        self.stats.widenings += 1;
    }

    fn on_top(&mut self, _reason: &TopReason) {
        self.stats.tops += 1;
    }

    fn on_terminal(&mut self, _st: &AnalysisState) {
        self.stats.terminals += 1;
    }

    fn on_complete(&mut self, result: &AnalysisResult) {
        self.closure = Some(result.closure_stats);
    }

    fn timing_enabled(&self) -> bool {
        true
    }

    fn on_profile(&mut self, profile: &EngineProfile) {
        self.profile = Some(*profile);
    }
}

/// Composes observers: every hook fans out to each layer in push order.
///
/// ```
/// use mpl_core::observer::{ObserverStack, StatsObserver, TraceObserver};
/// let mut tracer = TraceObserver::new();
/// let mut stats = StatsObserver::new();
/// let mut stack = ObserverStack::new();
/// stack.push(&mut tracer);
/// stack.push(&mut stats);
/// // pass `&mut stack` to `analyze_cfg_with`...
/// ```
#[derive(Default)]
pub struct ObserverStack<'a> {
    layers: Vec<&'a mut dyn AnalysisObserver>,
}

impl<'a> ObserverStack<'a> {
    /// An empty stack (equivalent to [`NoopObserver`], minus the
    /// per-hook virtual dispatch).
    #[must_use]
    pub fn new() -> ObserverStack<'a> {
        ObserverStack { layers: Vec::new() }
    }

    /// Adds an observer layer; hooks fire in push order.
    pub fn push(&mut self, observer: &'a mut dyn AnalysisObserver) {
        self.layers.push(observer);
    }

    /// True if no layers are stacked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl AnalysisObserver for ObserverStack<'_> {
    fn on_step(&mut self, step: u64, st: &AnalysisState) {
        for layer in &mut self.layers {
            layer.on_step(step, st);
        }
    }

    fn on_promote(&mut self, pset_idx: usize, st: &AnalysisState) {
        for layer in &mut self.layers {
            layer.on_promote(pset_idx, st);
        }
    }

    fn on_split(&mut self, a: &LinExpr, b: &LinExpr) {
        for layer in &mut self.layers {
            layer.on_split(a, b);
        }
    }

    fn on_merge(&mut self, before: usize, after: usize) {
        for layer in &mut self.layers {
            layer.on_merge(before, after);
        }
    }

    fn on_match(&mut self, event: &MatchEvent) {
        for layer in &mut self.layers {
            layer.on_match(event);
        }
    }

    fn on_match_rejected(&mut self) {
        for layer in &mut self.layers {
            layer.on_match_rejected();
        }
    }

    fn on_widen(&mut self, visits: u32, widened: &AnalysisState) {
        for layer in &mut self.layers {
            layer.on_widen(visits, widened);
        }
    }

    fn on_top(&mut self, reason: &TopReason) {
        for layer in &mut self.layers {
            layer.on_top(reason);
        }
    }

    fn on_terminal(&mut self, st: &AnalysisState) {
        for layer in &mut self.layers {
            layer.on_terminal(st);
        }
    }

    fn on_complete(&mut self, result: &AnalysisResult) {
        for layer in &mut self.layers {
            layer.on_complete(result);
        }
    }

    fn timing_enabled(&self) -> bool {
        self.layers.iter().any(|layer| layer.timing_enabled())
    }

    fn on_profile(&mut self, profile: &EngineProfile) {
        for layer in &mut self.layers {
            layer.on_profile(profile);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AnalysisConfig;
    use crate::engine::{analyze, analyze_cfg_with};
    use mpl_cfg::Cfg;
    use mpl_lang::corpus;

    #[test]
    fn trace_observer_reproduces_legacy_trace() {
        let prog = corpus::fig2_exchange();
        let config = AnalysisConfig {
            trace: true,
            ..AnalysisConfig::default()
        };
        let legacy = analyze(&prog.program, &config);
        let mut tracer = TraceObserver::new();
        let untraced = AnalysisConfig::default();
        let observed = analyze_cfg_with(&Cfg::build(&prog.program), &untraced, &mut tracer);
        assert_eq!(legacy.trace, tracer.lines());
        assert_eq!(legacy.verdict, observed.verdict);
        assert_eq!(legacy.steps, observed.steps);
    }

    #[test]
    fn stats_observer_counts_steps_and_matches() {
        let prog = corpus::fig2_exchange();
        let mut stats = StatsObserver::new();
        let result = analyze_cfg_with(
            &Cfg::build(&prog.program),
            &AnalysisConfig::default(),
            &mut stats,
        );
        assert_eq!(stats.stats().steps, result.steps);
        assert_eq!(stats.stats().matches as usize, result.events.len());
        assert_eq!(
            stats.closure_stats().copied(),
            Some(result.closure_stats),
            "on_complete must capture the session's closure delta"
        );
        // The Display form is a single line.
        assert!(!stats.stats().to_string().contains('\n'));
    }

    #[test]
    fn observer_stack_fans_out_to_all_layers() {
        let prog = corpus::exchange_with_root();
        let mut tracer = TraceObserver::new();
        let mut stats = StatsObserver::new();
        let result = {
            let mut stack = ObserverStack::new();
            assert!(stack.is_empty());
            stack.push(&mut tracer);
            stack.push(&mut stats);
            assert!(!stack.is_empty());
            analyze_cfg_with(
                &Cfg::build(&prog.program),
                &AnalysisConfig::default(),
                &mut stack,
            )
        };
        assert!(result.is_exact());
        assert_eq!(stats.stats().steps, result.steps);
        assert!(tracer.lines().len() as u64 >= result.steps);
    }
}
