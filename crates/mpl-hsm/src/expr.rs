//! Conversion of MPL message expressions into HSMs (§VIII-A): the
//! variable `id` becomes the range HSM of the executing process set,
//! constants and set-uniform variables become scalars broadcast over the
//! set, and `+ - * / %` map onto the Table I algebra.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use mpl_lang::ast::{BinOp, Expr, UnOp};

use crate::hsm::{Hsm, HsmError};
use crate::symval::{AssumptionCtx, SymPoly};

/// An error converting an expression to an HSM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExprToHsmError {
    /// The expression uses an operator outside the HSM fragment
    /// (booleans, comparisons, sequence×sequence multiplication, …).
    Unsupported(String),
    /// A variable with no known symbolic value.
    UnknownVariable(String),
    /// An underlying HSM operation failed.
    Hsm(HsmError),
}

impl fmt::Display for ExprToHsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprToHsmError::Unsupported(what) => write!(f, "unsupported in HSM fragment: {what}"),
            ExprToHsmError::UnknownVariable(name) => write!(f, "unknown variable `{name}`"),
            ExprToHsmError::Hsm(e) => write!(f, "{e}"),
        }
    }
}

impl Error for ExprToHsmError {}

impl From<HsmError> for ExprToHsmError {
    fn from(e: HsmError) -> Self {
        ExprToHsmError::Hsm(e)
    }
}

/// Either a per-process sequence or a set-uniform scalar.
enum Value {
    Seq(Hsm),
    Scalar(SymPoly),
}

/// Converts `expr` into the HSM mapping each process of the executing
/// set to the expression's value on that process.
///
/// * `id_hsm` — the HSM for `id` over the executing set (usually
///   `Hsm::range(lb, size)`),
/// * `vars` — symbolic values for set-uniform program variables (missing
///   variables fail the conversion),
/// * `ctx` — the assumption context.
///
/// # Errors
///
/// Returns [`ExprToHsmError`] when the expression leaves the supported
/// fragment; the client analysis treats this as "cannot match" (⊤).
pub fn expr_to_hsm(
    expr: &Expr,
    id_hsm: &Hsm,
    vars: &BTreeMap<String, SymPoly>,
    ctx: &AssumptionCtx,
) -> Result<Hsm, ExprToHsmError> {
    let n = id_hsm.len(ctx);
    match convert(expr, id_hsm, vars, ctx)? {
        Value::Seq(h) => Ok(h),
        Value::Scalar(v) => Ok(Hsm::constant(v, n)),
    }
}

/// Composes a receive source expression with a send destination
/// expression over the sender set: builds the send HSM over `id_hsm`
/// (the senders' `id` range) and threads it through the receive
/// expression, yielding `(send, recv ∘ send)`.
///
/// This is the §VIII matching pipeline in one call — the caller checks
/// the send HSM for surjectivity onto the receiver set and the composed
/// HSM for identity on the sender set.
///
/// # Errors
///
/// Returns [`ExprToHsmError`] when either expression leaves the
/// supported fragment.
pub fn compose_exprs(
    send_dest: &Expr,
    recv_src: &Expr,
    id_hsm: &Hsm,
    vars_send: &BTreeMap<String, SymPoly>,
    vars_recv: &BTreeMap<String, SymPoly>,
    ctx: &AssumptionCtx,
) -> Result<(Hsm, Hsm), ExprToHsmError> {
    let h_send = expr_to_hsm(send_dest, id_hsm, vars_send, ctx)?;
    let composed = expr_to_hsm(recv_src, &h_send, vars_recv, ctx)?;
    Ok((h_send, composed))
}

fn convert(
    expr: &Expr,
    id_hsm: &Hsm,
    vars: &BTreeMap<String, SymPoly>,
    ctx: &AssumptionCtx,
) -> Result<Value, ExprToHsmError> {
    Ok(match expr {
        Expr::Int(c) => Value::Scalar(SymPoly::constant(*c)),
        Expr::Bool(_) => {
            return Err(ExprToHsmError::Unsupported("boolean literal".into()));
        }
        Expr::Id => Value::Seq(id_hsm.clone()),
        Expr::Np => Value::Scalar(ctx.normalize(&SymPoly::sym("np"))),
        Expr::Var(name) => Value::Scalar(
            vars.get(name)
                .cloned()
                .map(|p| ctx.normalize(&p))
                .ok_or_else(|| ExprToHsmError::UnknownVariable(name.clone()))?,
        ),
        Expr::Unary(UnOp::Neg, e) => match convert(e, id_hsm, vars, ctx)? {
            Value::Scalar(v) => Value::Scalar(-v),
            Value::Seq(h) => Value::Seq(h.mul_scalar(&SymPoly::constant(-1), ctx)),
        },
        Expr::Unary(UnOp::Not, _) => {
            return Err(ExprToHsmError::Unsupported("logical not".into()));
        }
        Expr::Binary(op, l, r) => {
            let lv = convert(l, id_hsm, vars, ctx)?;
            let rv = convert(r, id_hsm, vars, ctx)?;
            match op {
                BinOp::Add => binary_add(lv, rv, ctx)?,
                BinOp::Sub => {
                    let neg = match rv {
                        Value::Scalar(v) => Value::Scalar(-v),
                        Value::Seq(h) => Value::Seq(h.mul_scalar(&SymPoly::constant(-1), ctx)),
                    };
                    binary_add(lv, neg, ctx)?
                }
                BinOp::Mul => match (lv, rv) {
                    (Value::Scalar(a), Value::Scalar(b)) => Value::Scalar(ctx.normalize(&(a * b))),
                    (Value::Seq(h), Value::Scalar(k)) | (Value::Scalar(k), Value::Seq(h)) => {
                        Value::Seq(h.mul_scalar(&k, ctx))
                    }
                    (Value::Seq(_), Value::Seq(_)) => {
                        return Err(ExprToHsmError::Unsupported(
                            "product of two id-dependent expressions".into(),
                        ));
                    }
                },
                BinOp::Div => match (lv, rv) {
                    (Value::Scalar(a), Value::Scalar(b)) => {
                        Value::Scalar(ctx.div_exact(&a, &b).ok_or_else(|| {
                            ExprToHsmError::Unsupported(format!("inexact division {a}/{b}"))
                        })?)
                    }
                    (Value::Seq(h), Value::Scalar(q)) => Value::Seq(h.div(&q, ctx)?),
                    _ => {
                        return Err(ExprToHsmError::Unsupported(
                            "division by an id-dependent expression".into(),
                        ));
                    }
                },
                BinOp::Mod => match (lv, rv) {
                    (Value::Scalar(a), Value::Scalar(b)) => {
                        let (_, lo) = a.split_divisible(&b);
                        // Exact only when the remainder is provably within
                        // [0, b).
                        let fits = ctx.nonneg(&lo)
                            && ctx.nonneg(&(b.clone() - lo.clone() - SymPoly::constant(1)));
                        if fits {
                            Value::Scalar(lo)
                        } else {
                            return Err(ExprToHsmError::Unsupported(format!(
                                "inexact modulus {a}%{b}"
                            )));
                        }
                    }
                    (Value::Seq(h), Value::Scalar(q)) => Value::Seq(h.modulo(&q, ctx)?),
                    _ => {
                        return Err(ExprToHsmError::Unsupported(
                            "modulus by an id-dependent expression".into(),
                        ));
                    }
                },
                _ => {
                    return Err(ExprToHsmError::Unsupported(format!(
                        "operator `{op}` in a message expression"
                    )));
                }
            }
        }
    })
}

fn binary_add(l: Value, r: Value, ctx: &AssumptionCtx) -> Result<Value, ExprToHsmError> {
    Ok(match (l, r) {
        (Value::Scalar(a), Value::Scalar(b)) => Value::Scalar(ctx.normalize(&(a + b))),
        (Value::Seq(h), Value::Scalar(k)) | (Value::Scalar(k), Value::Seq(h)) => {
            Value::Seq(h.add_scalar(&k, ctx))
        }
        (Value::Seq(a), Value::Seq(b)) => Value::Seq(a.add(&b, ctx)?),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_lang::ast::StmtKind;
    use mpl_lang::parse_program;

    /// Parses `send 0 -> <expr>;` and extracts the destination expression.
    fn dest_expr(src: &str) -> Expr {
        let p = parse_program(&format!("send 0 -> {src};")).unwrap();
        let StmtKind::Send { dest, .. } = &p.stmts[0].kind else {
            panic!()
        };
        dest.clone()
    }

    fn square_ctx() -> AssumptionCtx {
        let mut ctx = AssumptionCtx::new();
        ctx.define("np", SymPoly::sym("nrows") * SymPoly::sym("ncols"));
        ctx.define("ncols", SymPoly::sym("nrows"));
        ctx
    }

    fn rect_ctx() -> AssumptionCtx {
        let mut ctx = AssumptionCtx::new();
        ctx.define("np", SymPoly::sym("nrows") * SymPoly::sym("ncols"));
        ctx.define("ncols", SymPoly::constant(2) * SymPoly::sym("nrows"));
        ctx
    }

    fn grid_vars() -> BTreeMap<String, SymPoly> {
        let mut vars = BTreeMap::new();
        vars.insert("nrows".to_owned(), SymPoly::sym("nrows"));
        vars.insert("ncols".to_owned(), SymPoly::sym("ncols"));
        vars
    }

    fn all_procs(ctx: &AssumptionCtx) -> Hsm {
        Hsm::range(SymPoly::zero(), ctx.normalize(&SymPoly::sym("np")))
    }

    #[test]
    fn id_plus_constant_shifts_range() {
        let ctx = AssumptionCtx::new();
        let id = Hsm::range(SymPoly::constant(1), SymPoly::sym("n"));
        let h = expr_to_hsm(&dest_expr("id + 1"), &id, &BTreeMap::new(), &ctx).unwrap();
        assert!(h.seq_eq(&Hsm::range(SymPoly::constant(2), SymPoly::sym("n")), &ctx));
    }

    #[test]
    fn constant_expression_broadcasts() {
        let ctx = AssumptionCtx::new();
        let id = Hsm::range(SymPoly::zero(), SymPoly::sym("n"));
        let h = expr_to_hsm(&dest_expr("0"), &id, &BTreeMap::new(), &ctx).unwrap();
        assert!(h.seq_eq(&Hsm::constant(SymPoly::zero(), SymPoly::sym("n")), &ctx));
    }

    #[test]
    fn uniform_variable_broadcasts() {
        let ctx = AssumptionCtx::new();
        let id = Hsm::range(SymPoly::zero(), SymPoly::constant(1));
        let mut vars = BTreeMap::new();
        vars.insert("i".to_owned(), SymPoly::sym("i"));
        let h = expr_to_hsm(&dest_expr("i"), &id, &vars, &ctx).unwrap();
        assert!(h.seq_eq(
            &Hsm::constant(SymPoly::sym("i"), SymPoly::constant(1)),
            &ctx
        ));
    }

    #[test]
    fn unknown_variable_is_an_error() {
        let ctx = AssumptionCtx::new();
        let id = Hsm::range(SymPoly::zero(), SymPoly::constant(4));
        let err = expr_to_hsm(&dest_expr("mystery + 1"), &id, &BTreeMap::new(), &ctx).unwrap_err();
        assert!(matches!(err, ExprToHsmError::UnknownVariable(v) if v == "mystery"));
    }

    #[test]
    fn square_transpose_matches_paper_hsm() {
        // (id % nrows) * nrows + id / nrows over [0..np-1], np = nrows².
        let ctx = square_ctx();
        let h = expr_to_hsm(
            &dest_expr("(id % nrows) * nrows + id / nrows"),
            &all_procs(&ctx),
            &grid_vars(),
            &ctx,
        )
        .unwrap();
        // The paper's result: [[0 : nrows, nrows] : nrows, 1].
        let expected = Hsm::leaf(SymPoly::zero())
            .repeat(SymPoly::sym("nrows"), SymPoly::sym("nrows"))
            .repeat(SymPoly::sym("nrows"), SymPoly::constant(1));
        assert!(h.seq_eq(&expected, &ctx), "got {h}");
    }

    #[test]
    fn compose_exprs_pipelines_send_then_recv() {
        // The one-call composition must agree with the two explicit
        // expr_to_hsm steps on the transpose pattern.
        let ctx = square_ctx();
        let expr = dest_expr("(id % nrows) * nrows + id / nrows");
        let (send, composed) = compose_exprs(
            &expr,
            &expr,
            &all_procs(&ctx),
            &grid_vars(),
            &grid_vars(),
            &ctx,
        )
        .unwrap();
        let send2 = expr_to_hsm(&expr, &all_procs(&ctx), &grid_vars(), &ctx).unwrap();
        assert!(send.seq_eq(&send2, &ctx));
        let np = ctx.normalize(&SymPoly::sym("np"));
        assert!(composed.is_identity_on(&SymPoly::zero(), &np, &ctx));
        // A fragment error in either half propagates.
        assert!(compose_exprs(
            &dest_expr("mystery"),
            &expr,
            &all_procs(&ctx),
            &grid_vars(),
            &grid_vars(),
            &ctx
        )
        .is_err());
    }

    #[test]
    fn square_transpose_surjection_and_identity() {
        let ctx = square_ctx();
        let expr = dest_expr("(id % nrows) * nrows + id / nrows");
        let send = expr_to_hsm(&expr, &all_procs(&ctx), &grid_vars(), &ctx).unwrap();
        let np = ctx.normalize(&SymPoly::sym("np"));
        // Surjection onto [0..np-1] (§VIII-B2).
        assert!(send.is_surjection_onto(&SymPoly::zero(), &np, &ctx));
        // Composition with the receive expression is the identity
        // (§VIII-B1): substitute the send HSM for id.
        let composed = expr_to_hsm(&expr, &send, &grid_vars(), &ctx).unwrap();
        assert!(
            composed.is_identity_on(&SymPoly::zero(), &np, &ctx),
            "got {composed}"
        );
    }

    #[test]
    fn rect_transpose_surjection_and_identity() {
        // 2*nrows*((id/2) % nrows) + 2*(id/(2*nrows)) + id % 2 on a
        // nrows x 2*nrows grid.
        let ctx = rect_ctx();
        let expr = dest_expr("2 * nrows * ((id / 2) % nrows) + 2 * (id / (2 * nrows)) + id % 2");
        let send = expr_to_hsm(&expr, &all_procs(&ctx), &grid_vars(), &ctx).unwrap();
        // The paper's claimed image HSM: [[[0:2,1] : nrows, 2*nrows] : nrows, 2].
        let expected = Hsm::leaf(SymPoly::zero())
            .repeat(SymPoly::constant(2), SymPoly::constant(1))
            .repeat(
                SymPoly::sym("nrows"),
                SymPoly::constant(2) * SymPoly::sym("nrows"),
            )
            .repeat(SymPoly::sym("nrows"), SymPoly::constant(2));
        assert!(send.seq_eq(&expected, &ctx), "got {send}");
        let np = ctx.normalize(&SymPoly::sym("np"));
        assert!(send.is_surjection_onto(&SymPoly::zero(), &np, &ctx));
        let composed = expr_to_hsm(&expr, &send, &grid_vars(), &ctx).unwrap();
        assert!(
            composed.is_identity_on(&SymPoly::zero(), &np, &ctx),
            "got {composed}"
        );
    }

    #[test]
    fn ring_modulus_is_out_of_fragment() {
        // (id + 1) % np wraps around: not a single HSM (paper §X).
        let ctx = AssumptionCtx::new();
        let id = Hsm::range(SymPoly::zero(), SymPoly::sym("np"));
        let err = expr_to_hsm(&dest_expr("(id + 1) % np"), &id, &BTreeMap::new(), &ctx);
        assert!(err.is_err());
    }

    #[test]
    fn comparison_operators_are_rejected() {
        let ctx = AssumptionCtx::new();
        let id = Hsm::range(SymPoly::zero(), SymPoly::constant(4));
        assert!(matches!(
            expr_to_hsm(&dest_expr("id < 2"), &id, &BTreeMap::new(), &ctx),
            Err(ExprToHsmError::Unsupported(_))
        ));
    }

    #[test]
    fn seq_times_seq_is_rejected() {
        let ctx = AssumptionCtx::new();
        let id = Hsm::range(SymPoly::zero(), SymPoly::constant(4));
        assert!(expr_to_hsm(&dest_expr("id * id"), &id, &BTreeMap::new(), &ctx).is_err());
    }

    #[test]
    fn composition_on_concrete_grid_agrees_with_arithmetic() {
        // Cross-check the whole pipeline against brute-force arithmetic
        // on a concrete 3x3 grid.
        let ctx = square_ctx();
        let expr = dest_expr("(id % nrows) * nrows + id / nrows");
        let send = expr_to_hsm(&expr, &all_procs(&ctx), &grid_vars(), &ctx).unwrap();
        let mut b = BTreeMap::new();
        b.insert("nrows".to_owned(), 3);
        b.insert("ncols".to_owned(), 3);
        b.insert("np".to_owned(), 9);
        let got = send.concretize(&b).unwrap();
        let want: Vec<i64> = (0..9).map(|id| (id % 3) * 3 + id / 3).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn rect_composition_concrete_check() {
        let ctx = rect_ctx();
        let expr = dest_expr("2 * nrows * ((id / 2) % nrows) + 2 * (id / (2 * nrows)) + id % 2");
        let send = expr_to_hsm(&expr, &all_procs(&ctx), &grid_vars(), &ctx).unwrap();
        let mut b = BTreeMap::new();
        b.insert("nrows".to_owned(), 2);
        b.insert("ncols".to_owned(), 4);
        b.insert("np".to_owned(), 8);
        let got = send.concretize(&b).unwrap();
        let want: Vec<i64> = (0..8)
            .map(|id| 2 * 2 * ((id / 2) % 2) + 2 * (id / 4) + id % 2)
            .collect();
        assert_eq!(got, want);
    }
}

#[cfg(test)]
mod shift_tests {
    //! §VIII-C: the paper proves `(id-1) ∘ (id+1)` is the identity on the
    //! three process-set domains of the 1-d nearest-neighbor shift, and
    //! that `id+1` is a surjection onto each matched receiver set. These
    //! tests replay those inferences through the HSM pipeline.

    use super::*;
    use mpl_lang::ast::StmtKind;
    use mpl_lang::parse_program;

    fn expr(src: &str) -> mpl_lang::ast::Expr {
        let p = parse_program(&format!("send 0 -> {src};")).unwrap();
        let StmtKind::Send { dest, .. } = &p.stmts[0].kind else {
            panic!()
        };
        dest.clone()
    }

    fn np() -> SymPoly {
        SymPoly::sym("np")
    }

    #[test]
    fn shift_identity_on_singleton_edge() {
        // Domain [0]: send -> id+1 then receive <- id-1.
        let ctx = AssumptionCtx::new();
        let id = Hsm::leaf(SymPoly::zero());
        let sent = expr_to_hsm(&expr("id + 1"), &id, &BTreeMap::new(), &ctx).unwrap();
        let composed = expr_to_hsm(&expr("id - 1"), &sent, &BTreeMap::new(), &ctx).unwrap();
        assert!(composed.is_identity_on(&SymPoly::zero(), &SymPoly::constant(1), &ctx));
    }

    #[test]
    fn shift_identity_on_interior_range() {
        // Domain [1..np-3]: the paper's middle match [1..np-3] -> [2..np-2].
        let ctx = AssumptionCtx::new();
        let size = np() - SymPoly::constant(3); // |[1..np-3]| = np-3
        let id = Hsm::range(SymPoly::constant(1), size.clone());
        let sent = expr_to_hsm(&expr("id + 1"), &id, &BTreeMap::new(), &ctx).unwrap();
        // Surjection onto [2..np-2].
        assert!(sent.is_surjection_onto(&SymPoly::constant(2), &size, &ctx));
        // Identity of the composition on [1..np-3].
        let composed = expr_to_hsm(&expr("id - 1"), &sent, &BTreeMap::new(), &ctx).unwrap();
        assert!(composed.is_identity_on(&SymPoly::constant(1), &size, &ctx));
    }

    #[test]
    fn shift_identity_on_last_interior_rank() {
        // Domain [np-2]: matched to the right edge [np-1].
        let ctx = AssumptionCtx::new();
        let id = Hsm::leaf(np() - SymPoly::constant(2));
        let sent = expr_to_hsm(&expr("id + 1"), &id, &BTreeMap::new(), &ctx).unwrap();
        assert!(sent.is_surjection_onto(
            &(np() - SymPoly::constant(1)),
            &SymPoly::constant(1),
            &ctx
        ));
        let composed = expr_to_hsm(&expr("id - 1"), &sent, &BTreeMap::new(), &ctx).unwrap();
        assert!(composed.is_identity_on(
            &(np() - SymPoly::constant(2)),
            &SymPoly::constant(1),
            &ctx
        ));
    }

    #[test]
    fn wrong_offset_is_not_identity() {
        let ctx = AssumptionCtx::new();
        let id = Hsm::range(SymPoly::constant(1), np() - SymPoly::constant(3));
        let sent = expr_to_hsm(&expr("id + 1"), &id, &BTreeMap::new(), &ctx).unwrap();
        let composed = expr_to_hsm(&expr("id - 2"), &sent, &BTreeMap::new(), &ctx).unwrap();
        assert!(!composed.is_identity_on(
            &SymPoly::constant(1),
            &(np() - SymPoly::constant(3)),
            &ctx
        ));
    }
}
