//! Symbolic integer values: multivariate polynomials with an assumption
//! context for normalization, divisibility and sign reasoning.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// A monomial: a product of symbols with positive integer exponents
/// (empty = the constant monomial 1).
pub type Monomial = BTreeMap<String, u32>;

/// A multivariate polynomial with `i64` coefficients, e.g.
/// `2*nrows^2 - 1`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SymPoly {
    /// monomial → nonzero coefficient.
    terms: BTreeMap<Monomial, i64>,
}

impl SymPoly {
    /// The zero polynomial.
    #[must_use]
    pub fn zero() -> SymPoly {
        SymPoly::default()
    }

    /// A constant.
    #[must_use]
    pub fn constant(c: i64) -> SymPoly {
        let mut terms = BTreeMap::new();
        if c != 0 {
            terms.insert(Monomial::new(), c);
        }
        SymPoly { terms }
    }

    /// A single symbol.
    #[must_use]
    pub fn sym(name: impl Into<String>) -> SymPoly {
        let mut mono = Monomial::new();
        mono.insert(name.into(), 1);
        let mut terms = BTreeMap::new();
        terms.insert(mono, 1);
        SymPoly { terms }
    }

    /// True if identically zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// The constant value, if the polynomial has no symbols.
    #[must_use]
    pub fn as_constant(&self) -> Option<i64> {
        match self.terms.len() {
            0 => Some(0),
            1 => {
                let (mono, c) = self.terms.iter().next().expect("len 1");
                mono.is_empty().then_some(*c)
            }
            _ => None,
        }
    }

    /// True if equal to the constant 1.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.as_constant() == Some(1)
    }

    /// All symbols mentioned.
    #[must_use]
    pub fn symbols(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for mono in self.terms.keys() {
            for s in mono.keys() {
                if !out.contains(&s.as_str()) {
                    out.push(s);
                }
            }
        }
        out
    }

    fn insert_term(terms: &mut BTreeMap<Monomial, i64>, mono: Monomial, coeff: i64) {
        if coeff == 0 {
            return;
        }
        let entry = terms.entry(mono).or_insert(0);
        *entry += coeff;
        if *entry == 0 {
            // Remove cancelled terms; we need the key again, so re-find.
            terms.retain(|_, c| *c != 0);
        }
    }

    /// Exact division: `Some(self / q)` if `q` divides every term.
    ///
    /// Complete when `q` is a single term (constant times monomial) —
    /// which is all the paper's divisors reduce to after normalization —
    /// plus the trivial cases `self = 0` and `self = q`.
    #[must_use]
    pub fn try_div_exact(&self, q: &SymPoly) -> Option<SymPoly> {
        if q.is_zero() {
            return None;
        }
        if self.is_zero() {
            return Some(SymPoly::zero());
        }
        if self == q {
            return Some(SymPoly::constant(1));
        }
        // Single-term divisor.
        if q.terms.len() == 1 {
            let (qm, qc) = q.terms.iter().next().expect("len 1");
            let mut out = BTreeMap::new();
            for (m, c) in &self.terms {
                if c % qc != 0 {
                    return None;
                }
                let mut rm = m.clone();
                for (s, e) in qm {
                    let cur = rm.get_mut(s)?;
                    if *cur < *e {
                        return None;
                    }
                    *cur -= e;
                    if *cur == 0 {
                        rm.remove(s);
                    }
                }
                Self::insert_term(&mut out, rm, c / qc);
            }
            return Some(SymPoly { terms: out });
        }
        None
    }

    /// Splits `self` into `(hi, lo)` with `self = q * hi + lo`, putting
    /// every `q`-divisible term into `hi`.
    #[must_use]
    pub fn split_divisible(&self, q: &SymPoly) -> (SymPoly, SymPoly) {
        let mut hi = SymPoly::zero();
        let mut lo = SymPoly::zero();
        for (m, c) in &self.terms {
            let term = SymPoly {
                terms: BTreeMap::from([(m.clone(), *c)]),
            };
            match term.try_div_exact(q) {
                Some(d) => hi = hi + d,
                None => lo = lo + term,
            }
        }
        (hi, lo)
    }

    /// Evaluates under concrete symbol bindings; `None` if a symbol is
    /// unbound.
    #[must_use]
    pub fn eval(&self, bindings: &BTreeMap<String, i64>) -> Option<i64> {
        let mut total: i64 = 0;
        for (mono, c) in &self.terms {
            let mut v: i64 = *c;
            for (s, e) in mono {
                let b = *bindings.get(s)?;
                for _ in 0..*e {
                    v = v.checked_mul(b)?;
                }
            }
            total = total.checked_add(v)?;
        }
        Some(total)
    }

    /// Substitutes `sym := replacement` throughout.
    #[must_use]
    pub fn subst(&self, sym: &str, replacement: &SymPoly) -> SymPoly {
        let mut out = SymPoly::zero();
        for (mono, c) in &self.terms {
            let mut factor = SymPoly::constant(*c);
            for (s, e) in mono {
                let base = if s == sym {
                    replacement.clone()
                } else {
                    SymPoly::sym(s.clone())
                };
                for _ in 0..*e {
                    factor = factor * base.clone();
                }
            }
            out = out + factor;
        }
        out
    }

    /// True if provably `self ≥ 0` assuming every symbol is ≥ 1.
    ///
    /// Complete for our use: substitute `s := 1 + s'` for every symbol
    /// and check that all coefficients of the resulting polynomial (in
    /// the shifted symbols, which range over ≥ 0) are non-negative.
    #[must_use]
    pub fn provably_nonneg(&self) -> bool {
        let mut shifted = self.clone();
        for s in self
            .symbols()
            .into_iter()
            .map(str::to_owned)
            .collect::<Vec<_>>()
        {
            let repl = SymPoly::constant(1) + SymPoly::sym(format!("__shift_{s}"));
            shifted = shifted.subst(&s, &repl);
        }
        shifted.terms.values().all(|&c| c >= 0)
    }

    /// True if provably `self ≥ 1` (symbols ≥ 1).
    #[must_use]
    pub fn provably_pos(&self) -> bool {
        (self.clone() - SymPoly::constant(1)).provably_nonneg()
    }
}

impl Add for SymPoly {
    type Output = SymPoly;
    fn add(self, rhs: SymPoly) -> SymPoly {
        let mut terms = self.terms;
        for (m, c) in rhs.terms {
            SymPoly::insert_term(&mut terms, m, c);
        }
        terms.retain(|_, c| *c != 0);
        SymPoly { terms }
    }
}

impl Sub for SymPoly {
    type Output = SymPoly;
    fn sub(self, rhs: SymPoly) -> SymPoly {
        self + (-rhs)
    }
}

impl Neg for SymPoly {
    type Output = SymPoly;
    fn neg(self) -> SymPoly {
        SymPoly {
            terms: self.terms.into_iter().map(|(m, c)| (m, -c)).collect(),
        }
    }
}

impl Mul for SymPoly {
    type Output = SymPoly;
    fn mul(self, rhs: SymPoly) -> SymPoly {
        let mut terms: BTreeMap<Monomial, i64> = BTreeMap::new();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &rhs.terms {
                let mut m = ma.clone();
                for (s, e) in mb {
                    *m.entry(s.clone()).or_insert(0) += e;
                }
                SymPoly::insert_term(&mut terms, m, ca * cb);
            }
        }
        terms.retain(|_, c| *c != 0);
        SymPoly { terms }
    }
}

impl From<i64> for SymPoly {
    fn from(c: i64) -> SymPoly {
        SymPoly::constant(c)
    }
}

impl fmt::Display for SymPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return f.write_str("0");
        }
        let mut first = true;
        // Display higher-degree terms first for readability.
        let mut entries: Vec<(&Monomial, &i64)> = self.terms.iter().collect();
        entries.sort_by_key(|(m, _)| std::cmp::Reverse(m.values().sum::<u32>()));
        for (mono, c) in entries {
            let mut body = String::new();
            for (s, e) in mono {
                if !body.is_empty() {
                    body.push('*');
                }
                body.push_str(s);
                if *e > 1 {
                    body.push_str(&format!("^{e}"));
                }
            }
            if first {
                first = false;
                if body.is_empty() {
                    write!(f, "{c}")?;
                } else if *c == 1 {
                    write!(f, "{body}")?;
                } else if *c == -1 {
                    write!(f, "-{body}")?;
                } else {
                    write!(f, "{c}*{body}")?;
                }
            } else {
                let sign = if *c >= 0 { "+" } else { "-" };
                let mag = c.abs();
                if body.is_empty() {
                    write!(f, "{sign}{mag}")?;
                } else if mag == 1 {
                    write!(f, "{sign}{body}")?;
                } else {
                    write!(f, "{sign}{mag}*{body}")?;
                }
            }
        }
        Ok(())
    }
}

/// Normalization context: a set of oriented equalities used as rewrite
/// rules (e.g. `np → nrows*ncols`, `ncols → 2*nrows`). All symbols are
/// implicitly assumed ≥ 1 (they denote grid dimensions / rank counts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AssumptionCtx {
    /// Oriented substitutions, applied in order to a fixpoint.
    subs: Vec<(String, SymPoly)>,
}

impl AssumptionCtx {
    /// An empty context.
    #[must_use]
    pub fn new() -> AssumptionCtx {
        AssumptionCtx::default()
    }

    /// Adds the oriented equality `sym = value` (later normalizations
    /// replace `sym` by `value`).
    ///
    /// # Panics
    ///
    /// Panics if the substitution would be self-referential.
    pub fn define(&mut self, sym: impl Into<String>, value: SymPoly) {
        let sym = sym.into();
        assert!(
            !value.symbols().contains(&sym.as_str()),
            "self-referential assumption for {sym}"
        );
        self.subs.push((sym, value));
    }

    /// The substitutions in insertion order.
    #[must_use]
    pub fn substitutions(&self) -> &[(String, SymPoly)] {
        &self.subs
    }

    /// Rewrites `p` to normal form under the substitutions.
    #[must_use]
    pub fn normalize(&self, p: &SymPoly) -> SymPoly {
        let mut cur = p.clone();
        // Apply in order, repeatedly, until stable (substitutions may
        // cascade, e.g. np → nrows*ncols → 2*nrows^2).
        for _ in 0..=self.subs.len() {
            let mut next = cur.clone();
            for (s, v) in &self.subs {
                next = next.subst(s, v);
            }
            if next == cur {
                break;
            }
            cur = next;
        }
        cur
    }

    /// True if `a = b` under the assumptions.
    #[must_use]
    pub fn eq(&self, a: &SymPoly, b: &SymPoly) -> bool {
        self.normalize(a) == self.normalize(b)
    }

    /// Exact division in normal form.
    #[must_use]
    pub fn div_exact(&self, a: &SymPoly, b: &SymPoly) -> Option<SymPoly> {
        self.normalize(a).try_div_exact(&self.normalize(b))
    }

    /// True if provably `p ≥ 0` under the assumptions (symbols ≥ 1).
    #[must_use]
    pub fn nonneg(&self, p: &SymPoly) -> bool {
        self.normalize(p).provably_nonneg()
    }

    /// True if provably `p ≥ 1`.
    #[must_use]
    pub fn pos(&self, p: &SymPoly) -> bool {
        self.normalize(p).provably_pos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(name: &str) -> SymPoly {
        SymPoly::sym(name)
    }

    fn c(v: i64) -> SymPoly {
        SymPoly::constant(v)
    }

    #[test]
    fn arithmetic_normalizes() {
        let p = (s("a") + c(1)) * (s("a") - c(1));
        assert_eq!(p, s("a") * s("a") - c(1));
        assert!((p.clone() - p).is_zero());
    }

    #[test]
    fn constants_and_zero() {
        assert_eq!(c(0), SymPoly::zero());
        assert_eq!((c(3) + c(-3)).as_constant(), Some(0));
        assert_eq!((c(3) * c(4)).as_constant(), Some(12));
        assert_eq!(s("x").as_constant(), None);
        assert!(c(1).is_one());
    }

    #[test]
    fn div_exact_single_term() {
        let p = c(2) * s("nrows") * s("nrows") + c(4) * s("nrows");
        assert_eq!(
            p.try_div_exact(&(c(2) * s("nrows"))),
            Some(s("nrows") + c(2))
        );
        assert_eq!(p.try_div_exact(&(c(3)).clone()), None);
        assert_eq!(p.try_div_exact(&(s("nrows") * s("nrows"))), None);
        assert_eq!(
            SymPoly::zero().try_div_exact(&s("q")),
            Some(SymPoly::zero())
        );
    }

    #[test]
    fn div_exact_self_and_by_zero() {
        let p = s("a") + c(1);
        assert_eq!(p.try_div_exact(&p), Some(c(1)));
        assert_eq!(p.try_div_exact(&SymPoly::zero()), None);
    }

    #[test]
    fn split_divisible_partitions_terms() {
        let p = c(6) * s("n") + c(5);
        let (hi, lo) = p.split_divisible(&(c(2) * s("n")));
        assert_eq!(hi, c(3));
        assert_eq!(lo, c(5));
    }

    #[test]
    fn eval_with_bindings() {
        let p = c(2) * s("n") * s("n") + s("m") - c(1);
        let mut b = BTreeMap::new();
        b.insert("n".to_owned(), 3);
        b.insert("m".to_owned(), 10);
        assert_eq!(p.eval(&b), Some(27));
        b.remove("m");
        assert_eq!(p.eval(&b), None);
    }

    #[test]
    fn subst_expands() {
        let p = s("np") - c(1);
        let q = p.subst("np", &(s("nrows") * s("ncols")));
        assert_eq!(q, s("nrows") * s("ncols") - c(1));
    }

    #[test]
    fn nonneg_reasoning_with_symbols_ge_one() {
        assert!(s("n").provably_nonneg());
        assert!((s("n") - c(1)).provably_nonneg());
        assert!(!(s("n") - c(2)).provably_nonneg()); // n could be 1
        assert!((s("n") * s("n") - s("n")).provably_nonneg()); // n^2 >= n
        assert!((c(2) * s("n") - s("n") - c(1)).provably_nonneg()); // 2n - n - 1 = n-1
        assert!(!(s("a") - s("b")).provably_nonneg());
        assert!(s("n").provably_pos());
        assert!(!(s("n") - c(1)).provably_pos());
    }

    #[test]
    fn ctx_normalization_cascades() {
        let mut ctx = AssumptionCtx::new();
        ctx.define("np", s("nrows") * s("ncols"));
        ctx.define("ncols", c(2) * s("nrows"));
        let n = ctx.normalize(&s("np"));
        assert_eq!(n, c(2) * s("nrows") * s("nrows"));
        assert!(ctx.eq(&s("np"), &(c(2) * s("nrows") * s("nrows"))));
        assert_eq!(
            ctx.div_exact(&s("np"), &(c(2) * s("nrows"))),
            Some(s("nrows"))
        );
    }

    #[test]
    #[should_panic(expected = "self-referential")]
    fn self_referential_assumption_panics() {
        let mut ctx = AssumptionCtx::new();
        ctx.define("x", s("x") + c(1));
    }

    #[test]
    fn display_readable() {
        assert_eq!((c(2) * s("n") * s("n") - c(1)).to_string(), "2*n^2-1");
        assert_eq!(SymPoly::zero().to_string(), "0");
        assert_eq!((s("a") - s("b")).to_string(), "a-b");
        assert_eq!((-s("a")).to_string(), "-a");
    }
}
