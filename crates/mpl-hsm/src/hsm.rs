//! The HSM type and the Table I algebra.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::symval::{AssumptionCtx, SymPoly};

/// One level of the mixed-radix hierarchy: `rep` copies at `stride`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Level {
    /// Number of repetitions (`r > 0`).
    pub rep: SymPoly,
    /// Stride between consecutive copies (`s`, may be 0).
    pub stride: SymPoly,
}

impl Level {
    /// A new level.
    #[must_use]
    pub fn new(rep: SymPoly, stride: SymPoly) -> Level {
        Level { rep, stride }
    }
}

/// A Hierarchical Sequence Map in flat mixed-radix normal form.
///
/// Denotes the sequence whose element at index `(t_1, …, t_m)` — with
/// `t_d ∈ [0, rep_d)`, level 1 innermost/fastest — is
/// `base + Σ_d stride_d · t_d`. The paper's nested `[e : r, s]` builds
/// this form via [`Hsm::leaf`] and [`Hsm::repeat`], and [`fmt::Display`]
/// prints the nested syntax back.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Hsm {
    /// The innermost scalar.
    pub base: SymPoly,
    /// Levels, innermost first.
    pub levels: Vec<Level>,
}

/// An error from a partial HSM operation: the operands are outside the
/// fragment the rules cover (the client analysis then falls back to ⊤).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HsmError {
    /// Human-readable reason.
    pub reason: String,
}

impl HsmError {
    fn new(reason: impl Into<String>) -> HsmError {
        HsmError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for HsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unsupported HSM operation: {}", self.reason)
    }
}

impl Error for HsmError {}

impl Hsm {
    /// The single-element sequence `⟨v⟩`.
    #[must_use]
    pub fn leaf(v: SymPoly) -> Hsm {
        Hsm {
            base: v,
            levels: Vec::new(),
        }
    }

    /// The paper's `[self : rep, stride]`: repeats the whole sequence.
    #[must_use]
    pub fn repeat(mut self, rep: SymPoly, stride: SymPoly) -> Hsm {
        self.levels.push(Level::new(rep, stride));
        self
    }

    /// The contiguous range `⟨l, l+1, …, l+n-1⟩` (the HSM of a process
    /// set, `[l : n, 1]`).
    #[must_use]
    pub fn range(l: SymPoly, n: SymPoly) -> Hsm {
        Hsm::leaf(l).repeat(n, SymPoly::constant(1))
    }

    /// The constant sequence `⟨v, v, …⟩` of length `n` (`[v : n, 0]`).
    #[must_use]
    pub fn constant(v: SymPoly, n: SymPoly) -> Hsm {
        Hsm::leaf(v).repeat(n, SymPoly::zero())
    }

    /// Total sequence length (product of reps).
    #[must_use]
    pub fn len(&self, ctx: &AssumptionCtx) -> SymPoly {
        let mut n = SymPoly::constant(1);
        for l in &self.levels {
            n = n * l.rep.clone();
        }
        ctx.normalize(&n)
    }

    /// True if this is a single scalar.
    #[must_use]
    pub fn is_scalar(&self) -> bool {
        self.levels.is_empty()
    }

    /// Enumerates the concrete sequence under symbol bindings.
    /// Returns `None` if a symbol is unbound, a rep is non-positive, or
    /// the sequence exceeds `1 << 20` elements.
    #[must_use]
    pub fn concretize(&self, bindings: &BTreeMap<String, i64>) -> Option<Vec<i64>> {
        let base = self.base.eval(bindings)?;
        let mut reps = Vec::new();
        let mut strides = Vec::new();
        let mut total: i64 = 1;
        for l in &self.levels {
            let r = l.rep.eval(bindings)?;
            if r <= 0 {
                return None;
            }
            total = total.checked_mul(r)?;
            if total > (1 << 20) {
                return None;
            }
            reps.push(r);
            strides.push(l.stride.eval(bindings)?);
        }
        let mut out = Vec::with_capacity(total as usize);
        let mut idx = vec![0i64; reps.len()];
        loop {
            let mut v = base;
            for (d, &t) in idx.iter().enumerate() {
                v += strides[d] * t;
            }
            out.push(v);
            // Advance the mixed-radix counter, innermost (level 0) fastest.
            let mut d = 0;
            loop {
                if d == reps.len() {
                    return Some(out);
                }
                idx[d] += 1;
                if idx[d] < reps[d] {
                    break;
                }
                idx[d] = 0;
                d += 1;
            }
        }
    }

    /// Normalizes all polynomials and canonicalizes the level list for
    /// *sequence* identity: drops `rep = 1` levels and fuses adjacent
    /// levels `(r, s), (r', r·s) → (r·r', s)` (the paper's
    /// sequence-equality reshape rule, applied as a reduction).
    #[must_use]
    pub fn seq_canonical(&self, ctx: &AssumptionCtx) -> Hsm {
        let base = ctx.normalize(&self.base);
        let mut levels: Vec<Level> = self
            .levels
            .iter()
            .map(|l| Level::new(ctx.normalize(&l.rep), ctx.normalize(&l.stride)))
            .filter(|l| !l.rep.is_one())
            .collect();
        // Fuse adjacent levels until stable.
        let mut changed = true;
        while changed {
            changed = false;
            let mut i = 0;
            while i + 1 < levels.len() {
                let fused = ctx.eq(
                    &levels[i + 1].stride,
                    &(levels[i].rep.clone() * levels[i].stride.clone()),
                );
                if fused {
                    let inner = levels.remove(i);
                    let outer = &mut levels[i];
                    outer.rep = ctx.normalize(&(inner.rep.clone() * outer.rep.clone()));
                    outer.stride = inner.stride;
                    changed = true;
                } else {
                    i += 1;
                }
            }
        }
        Hsm { base, levels }
    }

    /// True if `self` and `other` denote the *same sequence* (the paper's
    /// sequence-equality, decided via canonical forms).
    #[must_use]
    pub fn seq_eq(&self, other: &Hsm, ctx: &AssumptionCtx) -> bool {
        self.seq_canonical(ctx) == other.seq_canonical(ctx)
    }

    /// Canonicalizes for *set* (multiset) identity: level order is
    /// irrelevant to the multiset of values, so fuse any level pair
    /// `(r, s), (r', r·s)` regardless of position (subsuming the paper's
    /// interleave and transpose set-equality rules), then sort.
    #[must_use]
    pub fn set_canonical(&self, ctx: &AssumptionCtx) -> Hsm {
        let start = self.seq_canonical(ctx);
        let mut levels = start.levels;
        let mut changed = true;
        while changed {
            changed = false;
            'outer: for i in 0..levels.len() {
                for j in 0..levels.len() {
                    if i == j {
                        continue;
                    }
                    // Can level j sit directly above level i?
                    let fits = ctx.eq(
                        &levels[j].stride,
                        &(levels[i].rep.clone() * levels[i].stride.clone()),
                    );
                    if fits {
                        let rep = ctx.normalize(&(levels[i].rep.clone() * levels[j].rep.clone()));
                        let stride = levels[i].stride.clone();
                        let (a, b) = (i.min(j), i.max(j));
                        levels.remove(b);
                        levels.remove(a);
                        levels.push(Level::new(rep, stride));
                        changed = true;
                        break 'outer;
                    }
                }
            }
        }
        levels.sort();
        Hsm {
            base: start.base,
            levels,
        }
    }

    /// True if `self` and `other` provably denote the same *multiset* of
    /// values (the paper's set-equality `≈`). A `false` answer means
    /// "not proven", not "provably different".
    #[must_use]
    pub fn set_eq(&self, other: &Hsm, ctx: &AssumptionCtx) -> bool {
        self.set_canonical(ctx) == other.set_canonical(ctx)
    }

    /// True if this HSM is the identity map on `[l .. l+n-1]` — i.e. its
    /// sequence is exactly `⟨l, l+1, …⟩` (§VIII-B1).
    #[must_use]
    pub fn is_identity_on(&self, l: &SymPoly, n: &SymPoly, ctx: &AssumptionCtx) -> bool {
        if ctx.eq(n, &SymPoly::constant(1)) {
            // A single process: identity iff the value is l.
            let c = self.seq_canonical(ctx);
            return c.levels.is_empty() && ctx.eq(&c.base, l);
        }
        self.seq_eq(&Hsm::range(l.clone(), n.clone()), ctx)
    }

    /// True if this HSM is a surjection onto `[l .. l+n-1]` — its value
    /// multiset covers the range (§VIII-B2).
    #[must_use]
    pub fn is_surjection_onto(&self, l: &SymPoly, n: &SymPoly, ctx: &AssumptionCtx) -> bool {
        if ctx.eq(n, &SymPoly::constant(1)) {
            let c = self.set_canonical(ctx);
            return c.levels.iter().all(|lv| lv.stride.is_zero()) && ctx.eq(&c.base, l);
        }
        self.set_eq(&Hsm::range(l.clone(), n.clone()), ctx)
    }

    /// Element-wise sum of two equal-length HSMs (Table I addition),
    /// aligning the level structures by splitting reps where needed.
    ///
    /// # Errors
    ///
    /// Fails if the level structures cannot be aligned by exact rep
    /// division (which implies the lengths cannot be proven equal).
    pub fn add(&self, other: &Hsm, ctx: &AssumptionCtx) -> Result<Hsm, HsmError> {
        let a = self.seq_canonical(ctx);
        let b = other.seq_canonical(ctx);
        let (la, lb) = Hsm::align(a.levels, b.levels, ctx)?;
        let levels = la
            .into_iter()
            .zip(lb)
            .map(|(x, y)| Level::new(x.rep, ctx.normalize(&(x.stride + y.stride))))
            .collect();
        Ok(Hsm {
            base: ctx.normalize(&(a.base + b.base)),
            levels,
        })
    }

    /// Aligns two level lists (innermost first) to a common refinement,
    /// splitting a coarser level `(r·q, s)` into `(r, s)` + `(q, r·s)`
    /// when the other side's level has rep `r` — the sequence-equality
    /// reshape of Table I used as a refinement step.
    fn align(
        mut a: Vec<Level>,
        mut b: Vec<Level>,
        ctx: &AssumptionCtx,
    ) -> Result<(Vec<Level>, Vec<Level>), HsmError> {
        let mut out_a = Vec::new();
        let mut out_b = Vec::new();
        a.reverse(); // Work from innermost by popping.
        b.reverse();
        while let (Some(la), Some(lb)) = (a.last().cloned(), b.last().cloned()) {
            if ctx.eq(&la.rep, &lb.rep) {
                out_a.push(la);
                out_b.push(lb);
                a.pop();
                b.pop();
            } else if let Some(q) = ctx
                .div_exact(&la.rep, &lb.rep)
                .filter(|q| !q.is_one() && q.provably_pos())
            {
                // a's level is coarser: emit its inner slice, keep the rest.
                out_a.push(Level::new(lb.rep.clone(), la.stride.clone()));
                out_b.push(lb.clone());
                b.pop();
                let rest_stride = ctx.normalize(&(lb.rep.clone() * la.stride.clone()));
                *a.last_mut().expect("nonempty") = Level::new(q, rest_stride);
            } else if let Some(q) = ctx
                .div_exact(&lb.rep, &la.rep)
                .filter(|q| !q.is_one() && q.provably_pos())
            {
                out_b.push(Level::new(la.rep.clone(), lb.stride.clone()));
                out_a.push(la.clone());
                a.pop();
                let rest_stride = ctx.normalize(&(la.rep.clone() * lb.stride.clone()));
                *b.last_mut().expect("nonempty") = Level::new(q, rest_stride);
            } else {
                return Err(HsmError::new("cannot align HSM levels"));
            }
        }
        if a.is_empty() && b.is_empty() {
            Ok((out_a, out_b))
        } else {
            Err(HsmError::new("HSM lengths differ"))
        }
    }

    /// Scalar multiplication (Table I): multiplies base and all strides.
    #[must_use]
    pub fn mul_scalar(&self, k: &SymPoly, ctx: &AssumptionCtx) -> Hsm {
        Hsm {
            base: ctx.normalize(&(self.base.clone() * k.clone())),
            levels: self
                .levels
                .iter()
                .map(|l| {
                    Level::new(
                        l.rep.clone(),
                        ctx.normalize(&(l.stride.clone() * k.clone())),
                    )
                })
                .collect(),
        }
    }

    /// Adds a scalar to every element.
    #[must_use]
    pub fn add_scalar(&self, k: &SymPoly, ctx: &AssumptionCtx) -> Hsm {
        Hsm {
            base: ctx.normalize(&(self.base.clone() + k.clone())),
            levels: self.levels.clone(),
        }
    }

    /// Integral division of every element by `q` (Table I, both division
    /// rules generalized): levels whose stride is divisible by `q` divide
    /// exactly; the remaining "low" part must provably fit inside one
    /// `q`-block.
    ///
    /// ```
    /// use mpl_hsm::{AssumptionCtx, Hsm, SymPoly};
    /// // The paper's example: [20 : 6, 5] / 10 = <2, 2, 3, 3, 4, 4>.
    /// let h = Hsm::leaf(SymPoly::constant(20))
    ///     .repeat(SymPoly::constant(6), SymPoly::constant(5));
    /// let d = h.div(&SymPoly::constant(10), &AssumptionCtx::new())?;
    /// assert_eq!(d.concretize(&Default::default()).unwrap(), vec![2, 2, 3, 3, 4, 4]);
    /// # Ok::<(), mpl_hsm::HsmError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Fails when a level can neither be divided exactly nor bounded
    /// within a block (after attempting the paper's reshape).
    pub fn div(&self, q: &SymPoly, ctx: &AssumptionCtx) -> Result<Hsm, HsmError> {
        let parts = self.classify(q, ctx)?;
        let levels = parts
            .levels
            .into_iter()
            .map(|(level, class)| match class {
                Class::High(divided) => Level::new(level.rep, divided),
                Class::Low => Level::new(level.rep, SymPoly::zero()),
            })
            .collect();
        Ok(Hsm {
            base: parts.base_hi,
            levels,
        })
    }

    /// Modulus of every element by `q` (Table I, generalized like
    /// [`Hsm::div`]).
    ///
    /// ```
    /// use mpl_hsm::{AssumptionCtx, Hsm, SymPoly};
    /// // The paper's example: [12 : 15, 2] % 6 = [[0 : 3, 2] : 5, 0].
    /// let h = Hsm::leaf(SymPoly::constant(12))
    ///     .repeat(SymPoly::constant(15), SymPoly::constant(2));
    /// let m = h.modulo(&SymPoly::constant(6), &AssumptionCtx::new())?;
    /// assert_eq!(
    ///     m.seq_canonical(&AssumptionCtx::new()).to_string(),
    ///     "[[0 : 3, 2] : 5, 0]"
    /// );
    /// # Ok::<(), mpl_hsm::HsmError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Fails under the same conditions as [`Hsm::div`].
    pub fn modulo(&self, q: &SymPoly, ctx: &AssumptionCtx) -> Result<Hsm, HsmError> {
        let parts = self.classify(q, ctx)?;
        let levels = parts
            .levels
            .into_iter()
            .map(|(level, class)| match class {
                Class::High(_) => Level::new(level.rep, SymPoly::zero()),
                Class::Low => level,
            })
            .collect();
        Ok(Hsm {
            base: parts.base_lo,
            levels,
        })
    }

    /// Shared decomposition for `div`/`modulo`: writes every element as
    /// `q·hi + lo` with `0 ≤ lo < q` provable.
    fn classify(&self, q: &SymPoly, ctx: &AssumptionCtx) -> Result<Classified, HsmError> {
        let q = ctx.normalize(q);
        if !q.provably_pos() {
            return Err(HsmError::new(format!("divisor {q} not provably positive")));
        }
        let me = self.seq_canonical(ctx);
        let (base_hi, base_lo) = me.base.split_divisible(&q);
        if !ctx.nonneg(&base_lo) {
            return Err(HsmError::new(format!(
                "base remainder {base_lo} not provably non-negative"
            )));
        }
        let mut levels: Vec<(Level, Class)> = Vec::new();
        let mut lo_max = base_lo.clone();
        for level in me.levels {
            if let Some(divided) = ctx.div_exact(&level.stride, &q) {
                levels.push((level, Class::High(divided)));
                continue;
            }
            if ctx.nonneg(&level.stride) {
                // Candidate low level. If it is too wide to fit below q
                // but factors as r = r1·r2 with s·r1 = q, reshape it into
                // an inner low slice plus an outer q-strided (high) level
                // — the paper's `[e : r1·r2, s] = [[e : r1, s] : r2, r1·s]`.
                let split = ctx
                    .div_exact(&q, &level.stride)
                    .filter(|r1| !r1.is_one() && r1.provably_pos())
                    .and_then(|r1| {
                        let r2 = ctx.div_exact(&level.rep, &r1)?;
                        (!r2.is_one() && r2.provably_pos()).then_some((r1, r2))
                    });
                if let Some((r1, r2)) = split {
                    lo_max = lo_max + level.stride.clone() * (r1.clone() - SymPoly::constant(1));
                    levels.push((Level::new(r1, level.stride.clone()), Class::Low));
                    levels.push((Level::new(r2, q.clone()), Class::High(SymPoly::constant(1))));
                    continue;
                }
                lo_max = lo_max + level.stride.clone() * (level.rep.clone() - SymPoly::constant(1));
                levels.push((level, Class::Low));
            } else {
                return Err(HsmError::new(format!(
                    "stride {} neither divisible by {q} nor provably non-negative",
                    level.stride
                )));
            }
        }
        // The whole low part must fit strictly below q.
        let gap = q.clone() - ctx.normalize(&lo_max) - SymPoly::constant(1);
        if !ctx.nonneg(&gap) {
            return Err(HsmError::new(format!(
                "low part (max {}) not provably below divisor {q}",
                ctx.normalize(&lo_max)
            )));
        }
        Ok(Classified {
            base_hi,
            base_lo,
            levels,
        })
    }
}

enum Class {
    /// Stride divisible by `q`; payload is `stride / q`.
    High(SymPoly),
    /// Contributes to the within-block offset.
    Low,
}

struct Classified {
    base_hi: SymPoly,
    base_lo: SymPoly,
    levels: Vec<(Level, Class)>,
}

impl fmt::Display for Hsm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = self.base.to_string();
        for l in &self.levels {
            s = format!("[{s} : {}, {}]", l.rep, l.stride);
        }
        f.write_str(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(v: i64) -> SymPoly {
        SymPoly::constant(v)
    }

    fn s(name: &str) -> SymPoly {
        SymPoly::sym(name)
    }

    fn ctx() -> AssumptionCtx {
        AssumptionCtx::new()
    }

    fn concrete(h: &Hsm) -> Vec<i64> {
        h.concretize(&BTreeMap::new()).expect("concrete HSM")
    }

    #[test]
    fn concretize_paper_basic_example() {
        // [11 : 4, 5] = <11, 16, 21, 26>
        let h = Hsm::leaf(c(11)).repeat(c(4), c(5));
        assert_eq!(concrete(&h), vec![11, 16, 21, 26]);
    }

    #[test]
    fn concretize_nested_example() {
        // [[0 : 2, 10] : 3, 100] = <0, 10, 100, 110, 200, 210>
        let h = Hsm::leaf(c(0)).repeat(c(2), c(10)).repeat(c(3), c(100));
        assert_eq!(concrete(&h), vec![0, 10, 100, 110, 200, 210]);
    }

    #[test]
    fn paper_mod_example() {
        // [12 : 15, 2] % 6: the paper reduces it to [[0 : 3, 2] : 5, 0].
        let h = Hsm::leaf(c(12)).repeat(c(15), c(2));
        let m = h.modulo(&c(6), &ctx()).unwrap();
        let want: Vec<i64> = (0..15).map(|t| (12 + 2 * t) % 6).collect();
        assert_eq!(concrete(&m), want);
        // And structurally: base 0, levels (3,2),(5,0).
        let canon = m.seq_canonical(&ctx());
        assert_eq!(canon.base, c(0));
        assert_eq!(
            canon.levels,
            vec![Level::new(c(3), c(2)), Level::new(c(5), c(0))]
        );
    }

    #[test]
    fn paper_div_example() {
        // [20 : 6, 5] / 10 = <2, 2, 3, 3, 4, 4>.
        let h = Hsm::leaf(c(20)).repeat(c(6), c(5));
        let d = h.div(&c(10), &ctx()).unwrap();
        assert_eq!(concrete(&d), vec![2, 2, 3, 3, 4, 4]);
    }

    #[test]
    fn exact_division_rule() {
        // [20 : 3, 10] / 10 = <2, 3, 4>.
        let h = Hsm::leaf(c(20)).repeat(c(3), c(10));
        let d = h.div(&c(10), &ctx()).unwrap();
        assert_eq!(concrete(&d), vec![2, 3, 4]);
    }

    #[test]
    fn div_rejects_unprovable_cases() {
        // [0 : n, 3] / 2 with symbolic n: 3 not divisible by 2 and the
        // low span 3*(n-1) cannot be bounded below 2.
        let h = Hsm::leaf(c(0)).repeat(s("n"), c(3));
        assert!(h.div(&c(2), &ctx()).is_err());
        // Negative divisor.
        assert!(h.div(&c(-2), &ctx()).is_err());
    }

    #[test]
    fn mod_fits_whole_range() {
        // [0 : n, 1] % n: the range is exactly one block.
        let h = Hsm::range(c(0), s("n"));
        let m = h.modulo(&s("n"), &ctx()).unwrap();
        assert!(m.seq_eq(&Hsm::range(c(0), s("n")), &ctx()));
    }

    #[test]
    fn seq_equality_reshape_rule() {
        // [e : r*r', s] = [[e : r, s] : r', r*s]  (paper's rule 1)
        // [2 : 6, 2] = [[2 : 3, 2] : 2, 6]
        let flat = Hsm::leaf(c(2)).repeat(c(6), c(2));
        let nested = Hsm::leaf(c(2)).repeat(c(3), c(2)).repeat(c(2), c(6));
        assert!(flat.seq_eq(&nested, &ctx()));
        assert_eq!(concrete(&flat), concrete(&nested));
    }

    #[test]
    fn seq_equality_is_order_sensitive() {
        // <1, 11, 21, 2, 12, 22> vs <1, 2, 11, 12, 21, 22>: set-equal but
        // not sequence-equal.
        let a = Hsm::leaf(c(1)).repeat(c(3), c(10)).repeat(c(2), c(1));
        let b = Hsm::leaf(c(1)).repeat(c(2), c(1)).repeat(c(3), c(10));
        assert!(!a.seq_eq(&b, &ctx()));
        assert!(a.set_eq(&b, &ctx()));
        let mut va = concrete(&a);
        let mut vb = concrete(&b);
        assert_ne!(va, vb);
        va.sort_unstable();
        vb.sort_unstable();
        assert_eq!(va, vb);
    }

    #[test]
    fn set_equality_interleave_rule() {
        // [[2 : 3, 2*2] : 2, 2] ≈ [2 : 6, 2]  (paper's interleave rule)
        let interleaved = Hsm::leaf(c(2)).repeat(c(3), c(4)).repeat(c(2), c(2));
        let flat = Hsm::leaf(c(2)).repeat(c(6), c(2));
        assert!(interleaved.set_eq(&flat, &ctx()));
        assert!(!interleaved.seq_eq(&flat, &ctx()));
    }

    #[test]
    fn set_equality_rejects_different_sets() {
        let a = Hsm::leaf(c(0)).repeat(c(4), c(1));
        let b = Hsm::leaf(c(0)).repeat(c(4), c(2));
        assert!(!a.set_eq(&b, &ctx()));
    }

    #[test]
    fn identity_and_surjection_on_symbolic_range() {
        let h = Hsm::range(s("l"), s("n"));
        assert!(h.is_identity_on(&s("l"), &s("n"), &ctx()));
        assert!(h.is_surjection_onto(&s("l"), &s("n"), &ctx()));
        let shifted = h.add_scalar(&c(1), &ctx());
        assert!(!shifted.is_identity_on(&s("l"), &s("n"), &ctx()));
        assert!(shifted.is_identity_on(&(s("l") + c(1)), &s("n"), &ctx()));
    }

    #[test]
    fn singleton_identity() {
        let h = Hsm::leaf(s("i"));
        assert!(h.is_identity_on(&s("i"), &c(1), &ctx()));
        assert!(h.is_surjection_onto(&s("i"), &c(1), &ctx()));
        assert!(!h.is_identity_on(&(s("i") + c(1)), &c(1), &ctx()));
    }

    #[test]
    fn add_aligns_mismatched_levels() {
        // [0 : 6, 1] + [[0 : 2, 0] : 3, 10]: the flat range must split
        // into (2, 1), (3, 2)… actually (2,1)+(3,2*1): align by reps.
        let a = Hsm::leaf(c(0)).repeat(c(6), c(1));
        let b = Hsm::leaf(c(0)).repeat(c(2), c(0)).repeat(c(3), c(10));
        let sum = a.add(&b, &ctx()).unwrap();
        let want: Vec<i64> = concrete(&a)
            .into_iter()
            .zip(concrete(&b))
            .map(|(x, y)| x + y)
            .collect();
        assert_eq!(concrete(&sum), want);
    }

    #[test]
    fn add_rejects_length_mismatch() {
        let a = Hsm::leaf(c(0)).repeat(c(4), c(1));
        let b = Hsm::leaf(c(0)).repeat(c(5), c(1));
        assert!(a.add(&b, &ctx()).is_err());
        let sym = Hsm::leaf(c(0)).repeat(s("n"), c(1));
        assert!(a.add(&sym, &ctx()).is_err());
    }

    #[test]
    fn mul_scalar_scales_everything() {
        let h = Hsm::leaf(c(1)).repeat(c(3), c(2));
        let m = h.mul_scalar(&c(5), &ctx());
        assert_eq!(concrete(&m), vec![5, 15, 25]);
        let neg = h.mul_scalar(&c(-1), &ctx());
        assert_eq!(concrete(&neg), vec![-1, -3, -5]);
    }

    #[test]
    fn len_multiplies_reps() {
        let h = Hsm::leaf(c(0)).repeat(s("a"), c(1)).repeat(s("b"), c(10));
        assert_eq!(h.len(&ctx()), s("a") * s("b"));
        assert!(Hsm::leaf(c(3)).is_scalar());
        assert_eq!(Hsm::leaf(c(3)).len(&ctx()), c(1));
    }

    #[test]
    fn display_uses_paper_syntax() {
        let h = Hsm::leaf(c(0))
            .repeat(s("nrows"), s("nrows"))
            .repeat(s("nrows"), c(1));
        assert_eq!(h.to_string(), "[[0 : nrows, nrows] : nrows, 1]");
        assert_eq!(Hsm::leaf(c(7)).to_string(), "7");
    }

    #[test]
    fn concretize_guards() {
        // Unbound symbol.
        let h = Hsm::leaf(s("x"));
        assert_eq!(h.concretize(&BTreeMap::new()), None);
        // Non-positive rep.
        let h = Hsm::leaf(c(0)).repeat(c(0), c(1));
        assert_eq!(h.concretize(&BTreeMap::new()), None);
        // Oversized sequence.
        let h = Hsm::leaf(c(0)).repeat(c(1 << 30), c(1));
        assert_eq!(h.concretize(&BTreeMap::new()), None);
    }

    #[test]
    fn div_then_mod_reconstructs_value() {
        // For random-ish concrete HSMs where both ops succeed, check
        // v = q*(v/q) + (v%q) elementwise.
        let cases = vec![
            (Hsm::leaf(c(12)).repeat(c(15), c(2)), 6),
            (Hsm::leaf(c(20)).repeat(c(6), c(5)), 10),
            (Hsm::leaf(c(0)).repeat(c(4), c(1)).repeat(c(3), c(8)), 4),
            (Hsm::leaf(c(3)).repeat(c(2), c(0)).repeat(c(5), c(7)), 7),
        ];
        for (h, q) in cases {
            let ctx = ctx();
            let d = h
                .div(&c(q), &ctx)
                .unwrap_or_else(|e| panic!("div {h} by {q}: {e}"));
            let m = h
                .modulo(&c(q), &ctx)
                .unwrap_or_else(|e| panic!("mod {h} by {q}: {e}"));
            let vs = concrete(&h);
            let ds = concrete(&d);
            let ms = concrete(&m);
            for i in 0..vs.len() {
                assert_eq!(vs[i].div_euclid(q), ds[i], "div at {i} of {h}");
                assert_eq!(vs[i].rem_euclid(q), ms[i], "mod at {i} of {h}");
            }
        }
    }

    #[test]
    fn set_canonical_telescopes_transpose_image() {
        // levels (nrows, nrows), (nrows, 1) telescope to (nrows², 1).
        let h = Hsm::leaf(c(0))
            .repeat(s("nrows"), s("nrows"))
            .repeat(s("nrows"), c(1));
        let canon = h.set_canonical(&ctx());
        assert_eq!(canon.levels.len(), 1);
        assert_eq!(canon.levels[0].rep, s("nrows") * s("nrows"));
        assert_eq!(canon.levels[0].stride, c(1));
    }
}
