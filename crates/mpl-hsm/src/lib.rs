//! # mpl-hsm — Hierarchical Sequence Maps
//!
//! Implements §VIII of the CGO'09 paper: *Hierarchical Sequence Maps*
//! (HSMs), the abstraction that lets the parallel dataflow framework match
//! send/receive expressions built from `+`, `*`, integral `/` and `%`
//! over cartesian process grids.
//!
//! An HSM `[e : r, s]` denotes the sequence obtained by repeating the
//! sequence `e` a total of `r` times, shifting the `k`-th copy by `k*s`.
//! Internally we keep HSMs in a **flat mixed-radix normal form**: a base
//! value plus an ordered list of `(rep, stride)` levels (innermost
//! first), so the element at index `(t_1, …, t_m)` is
//! `base + Σ s_d · t_d` with `t_d ∈ [0, r_d)`. Every nested HSM of the
//! paper flattens into this form, and the paper's Table I operations and
//! both of its equality relations become systematic:
//!
//! * sequence-equality — canonicalize (drop `rep = 1` levels, merge
//!   adjacent levels with `s_{d+1} = r_d · s_d`) and compare;
//! * set-equality — additionally search for a level *permutation* that
//!   telescopes into a single contiguous level (this subsumes the paper's
//!   interleave and transpose reorderings).
//!
//! Bases, repetition counts and strides are symbolic polynomials
//! ([`SymPoly`]) normalized under an [`AssumptionCtx`] holding facts like
//! `np = nrows * ncols` and `ncols = 2 * nrows`; all symbols are assumed
//! to be at least 1 (they denote process-grid dimensions).
//!
//! ```
//! use mpl_hsm::{AssumptionCtx, Hsm, SymPoly};
//!
//! let ctx = AssumptionCtx::new();
//! // [11 : 4, 5] = <11, 16, 21, 26>
//! let h = Hsm::leaf(SymPoly::constant(11)).repeat(SymPoly::constant(4), SymPoly::constant(5));
//! assert_eq!(h.concretize(&Default::default()).unwrap(), vec![11, 16, 21, 26]);
//! # let _ = ctx;
//! ```

pub mod expr;
pub mod hsm;
pub mod symval;

pub use expr::{compose_exprs, expr_to_hsm, ExprToHsmError};
pub use hsm::{Hsm, HsmError, Level};
pub use symval::{AssumptionCtx, SymPoly};
