//! # mpl-procset — symbolic process-set ranges
//!
//! The §VII-B process-set abstraction of the CGO'09 paper: a set of
//! processes is a contiguous rank range `[lb..ub]` whose bounds are *sets
//! of expressions* all provably equal to the bound's value. Keeping every
//! known alias of a bound is what makes the Fig 5 loop converge: on the
//! first iteration the released set is `[1..1]` with upper bound
//! `{1, i}` (since `i = 1` there), on the second it is `[1..2]` with
//! upper bound `{2, i}`; widening intersects the alias sets, leaving the
//! loop-invariant bound `{i}`.
//!
//! All comparisons are answered by a [`mpl_domains::ConstraintGraph`], so
//! a range like `[i+1 .. np-1]` can be proven empty exactly when the
//! constraints imply `i = np - 1`.

pub mod bound;
pub mod range;

pub use bound::Bound;
pub use range::{ProcRange, SubtractOutcome};
