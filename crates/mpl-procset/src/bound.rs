//! Range bounds as sets of provably-equal expressions.

use std::cmp::Ordering;
use std::collections::BTreeSet;
use std::fmt;

use mpl_domains::{ConstraintGraph, LinExpr, PsetId};

/// One end of a process range: a non-empty set of linear expressions,
/// all equal to the bound's value in the current dataflow state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bound {
    exprs: BTreeSet<LinExpr>,
}

impl Bound {
    /// A bound known by a single expression.
    #[must_use]
    pub fn of(e: LinExpr) -> Bound {
        let mut exprs = BTreeSet::new();
        exprs.insert(e);
        Bound { exprs }
    }

    /// A constant bound.
    #[must_use]
    pub fn constant(c: i64) -> Bound {
        Bound::of(LinExpr::constant(c))
    }

    /// A bound from an arbitrary alias set (empty = vacant).
    #[must_use]
    pub fn from_exprs(exprs: BTreeSet<LinExpr>) -> Bound {
        Bound { exprs }
    }

    /// Adds an alias known to equal this bound.
    pub fn insert(&mut self, e: LinExpr) {
        self.exprs.insert(e);
    }

    /// The expression aliases of this bound.
    #[must_use]
    pub fn exprs(&self) -> &BTreeSet<LinExpr> {
        &self.exprs
    }

    /// True if the alias set is empty — an unrepresentable bound
    /// (produced only by widening two unrelated bounds).
    #[must_use]
    pub fn is_vacant(&self) -> bool {
        self.exprs.is_empty()
    }

    /// A canonical representative (constants first, then smallest).
    ///
    /// # Panics
    ///
    /// Panics if the bound is vacant.
    #[must_use]
    pub fn rep(&self) -> &LinExpr {
        self.exprs
            .iter()
            .find(|e| e.is_constant())
            .or_else(|| self.exprs.iter().next())
            .expect("vacant bound has no representative")
    }

    /// The constant value, if any alias is a bare constant.
    #[must_use]
    pub fn as_constant(&self) -> Option<i64> {
        self.exprs.iter().find_map(LinExpr::as_constant)
    }

    /// Adds to the alias set every expression the constraint graph can
    /// prove equal to this bound: all aliases of each base variable, the
    /// constant value when pinned, and — for constant aliases — offsets
    /// from every pinned-down `id` variable (needed so a wavefront
    /// singleton like `[2..2]` keeps the loop-invariant alias
    /// `P.id` across widening).
    pub fn saturate(&mut self, cg: &mut ConstraintGraph) {
        let mut extra: BTreeSet<LinExpr> = BTreeSet::new();
        // Aliases already emitted by an earlier *full* class scan in this
        // call. The closed graph's exact-equality classes are transitive,
        // so scanning such an alias would re-emit exactly the same set —
        // and a saturated bound carries one alias per class member,
        // making the naive pass O(aliases · vars). Skipping keeps it at
        // one scan per distinct equality class.
        let mut scanned: BTreeSet<LinExpr> = BTreeSet::new();
        for e in &self.exprs {
            if scanned.contains(e) {
                continue;
            }
            if let Some(base) = &e.var {
                for alias in cg.equalities_of(base) {
                    let a = alias.plus(e.offset);
                    extra.insert(a);
                    scanned.insert(a);
                }
            } else {
                // Partial scan (pinned rank ids only) — its results do
                // not justify skipping a later full scan, so they go to
                // `extra` but not `scanned`. Rank variables are
                // identified by bit test on the packed id; the snapshot
                // of `Copy` ids costs one memcpy.
                for v in cg.variables().to_vec() {
                    if !v.is_rank_id() {
                        continue;
                    }
                    if let Some(cv) = cg.const_of(v) {
                        extra.insert(LinExpr::var_plus(v, e.offset - cv));
                    }
                }
            }
        }
        self.exprs.extend(extra);
    }

    /// The bound shifted by a constant (`b + c`).
    #[must_use]
    pub fn plus(&self, c: i64) -> Bound {
        Bound {
            exprs: self.exprs.iter().map(|e| e.plus(c)).collect(),
        }
    }

    /// Rewrites per-set base variables from namespace `from` to `to`.
    #[must_use]
    pub fn renamed(&self, from: PsetId, to: PsetId) -> Bound {
        Bound {
            exprs: self.exprs.iter().map(|e| e.renamed(from, to)).collect(),
        }
    }

    /// Widening: keeps only the aliases present in both bounds (the
    /// paper's Fig 5 loop-invariant mechanism). May produce a vacant
    /// bound if the two have nothing in common.
    #[must_use]
    pub fn widen(&self, newer: &Bound) -> Bound {
        Bound {
            exprs: self.exprs.intersection(&newer.exprs).cloned().collect(),
        }
    }

    /// Compares two bounds using the constraint graph; `None` when no
    /// relation is provable from any alias pair.
    pub fn compare(&self, cg: &mut ConstraintGraph, other: &Bound) -> Option<Ordering> {
        // Syntactic fast path: identical alias present in both.
        if self.exprs.intersection(&other.exprs).next().is_some() {
            return Some(Ordering::Equal);
        }
        // Same base variable: compare offsets directly.
        for a in &self.exprs {
            for b in &other.exprs {
                if let Some(d) = a.diff_if_comparable(b) {
                    return Some(d.cmp(&0));
                }
            }
        }
        for a in &self.exprs {
            for b in &other.exprs {
                if let Some(ord) = cg.compare_exprs(a, b) {
                    return Some(ord);
                }
            }
        }
        None
    }

    /// True if the graph proves `self = other`.
    pub fn provably_eq(&self, cg: &mut ConstraintGraph, other: &Bound) -> bool {
        self.compare(cg, other) == Some(Ordering::Equal)
    }

    /// True if the graph proves `self ≤ other`.
    pub fn provably_le(&self, cg: &mut ConstraintGraph, other: &Bound) -> bool {
        if matches!(
            self.compare(cg, other),
            Some(Ordering::Less | Ordering::Equal)
        ) {
            return true;
        }
        // One-directional fallback over all alias pairs. Pinned pairs are
        // decided by value: on the closed feasible graph `proves_le`
        // holds for two pinned aliases exactly when their constant values
        // are ordered, so the integer comparison replaces the matrix
        // probe without changing the answer. (On a bottom graph
        // `eval_expr` pins nothing and every probe succeeds, as before.)
        let avals: Vec<Option<i64>> = self.exprs.iter().map(|a| cg.eval_expr(a)).collect();
        let bvals: Vec<Option<i64>> = other.exprs.iter().map(|b| cg.eval_expr(b)).collect();
        for (a, &va) in self.exprs.iter().zip(&avals) {
            for (b, &vb) in other.exprs.iter().zip(&bvals) {
                let le = match (va, vb) {
                    (Some(x), Some(y)) => x <= y,
                    _ => cg.proves_le(a, b),
                };
                if le {
                    return true;
                }
            }
        }
        false
    }

    /// True if the graph proves `self < other`.
    pub fn provably_lt(&self, cg: &mut ConstraintGraph, other: &Bound) -> bool {
        self.compare(cg, other) == Some(Ordering::Less) || self.plus(1).provably_le(cg, other)
    }

    /// When [`Bound::compare`] is inconclusive, a representative pair of
    /// expressions whose relation would decide it — used by the engine to
    /// case-split an ambiguous match.
    pub fn compare_hint(
        &self,
        cg: &mut ConstraintGraph,
        other: &Bound,
    ) -> Option<(LinExpr, LinExpr)> {
        if self.is_vacant() || other.is_vacant() || self.compare(cg, other).is_some() {
            return None;
        }
        Some((*self.rep(), *other.rep()))
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.exprs.len() == 1 {
            write!(f, "{}", self.rep())
        } else {
            let parts: Vec<String> = self.exprs.iter().map(ToString::to_string).collect();
            write!(f, "{{{}}}", parts.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_domains::NsVar;

    fn var(name: &str) -> NsVar {
        NsVar::pset(PsetId(0), name)
    }

    #[test]
    fn constant_bounds_compare_without_graph_facts() {
        let mut cg = ConstraintGraph::new();
        let a = Bound::constant(3);
        let b = Bound::constant(5);
        assert_eq!(a.compare(&mut cg, &b), Some(Ordering::Less));
        assert!(a.provably_lt(&mut cg, &b));
        assert!(a.provably_le(&mut cg, &b));
        assert!(!b.provably_le(&mut cg, &a));
    }

    #[test]
    fn same_base_compares_by_offset() {
        let mut cg = ConstraintGraph::new();
        let a = Bound::of(LinExpr::var_plus(NsVar::Np, -1));
        let b = Bound::of(LinExpr::of_var(NsVar::Np));
        assert_eq!(a.compare(&mut cg, &b), Some(Ordering::Less));
    }

    #[test]
    fn graph_facts_resolve_cross_variable_comparisons() {
        let mut cg = ConstraintGraph::new();
        cg.assert_eq_const(var("i"), 1);
        let a = Bound::of(LinExpr::of_var(var("i")));
        let b = Bound::constant(1);
        assert!(a.provably_eq(&mut cg, &b));
        let c = Bound::constant(4);
        assert!(a.provably_lt(&mut cg, &c));
    }

    #[test]
    fn saturate_collects_aliases() {
        let mut cg = ConstraintGraph::new();
        cg.assert_eq_const(var("i"), 1);
        let mut b = Bound::of(LinExpr::of_var(var("i")));
        b.saturate(&mut cg);
        assert!(b.exprs().contains(&LinExpr::constant(1)));
        assert_eq!(b.as_constant(), Some(1));
    }

    #[test]
    fn saturate_shifts_alias_offsets() {
        let mut cg = ConstraintGraph::new();
        cg.assert_eq_const(var("i"), 4);
        let mut b = Bound::of(LinExpr::var_plus(var("i"), -1));
        b.saturate(&mut cg);
        assert!(b.exprs().contains(&LinExpr::constant(3)));
    }

    #[test]
    fn widen_keeps_common_aliases() {
        let mut cg = ConstraintGraph::new();
        cg.assert_eq_const(var("i"), 1);
        let mut first = Bound::of(LinExpr::of_var(var("i")));
        first.saturate(&mut cg); // {i, 1}
        let mut cg2 = ConstraintGraph::new();
        cg2.assert_eq_const(var("i"), 2);
        let mut second = Bound::of(LinExpr::of_var(var("i")));
        second.saturate(&mut cg2); // {i, 2}
        let w = first.widen(&second);
        assert_eq!(w.exprs().len(), 1);
        assert!(w.exprs().contains(&LinExpr::of_var(var("i"))));
        assert!(!w.is_vacant());
    }

    #[test]
    fn widen_disjoint_is_vacant() {
        let a = Bound::constant(1);
        let b = Bound::constant(2);
        assert!(a.widen(&b).is_vacant());
    }

    #[test]
    fn rep_prefers_constants() {
        let mut cg = ConstraintGraph::new();
        cg.assert_eq_const(var("i"), 7);
        let mut b = Bound::of(LinExpr::of_var(var("i")));
        b.saturate(&mut cg);
        assert_eq!(b.rep(), &LinExpr::constant(7));
    }

    #[test]
    fn plus_shifts_every_alias() {
        let mut b = Bound::constant(1);
        b.exprs.insert(LinExpr::of_var(var("i")));
        let shifted = b.plus(2);
        assert!(shifted.exprs().contains(&LinExpr::constant(3)));
        assert!(shifted.exprs().contains(&LinExpr::var_plus(var("i"), 2)));
    }

    #[test]
    fn renamed_rewrites_namespaced_bases() {
        let b = Bound::of(LinExpr::of_var(var("i")));
        let r = b.renamed(PsetId(0), PsetId(4));
        assert!(r
            .exprs()
            .contains(&LinExpr::of_var(NsVar::pset(PsetId(4), "i"))));
    }

    #[test]
    fn display_single_and_multi() {
        let b = Bound::constant(3);
        assert_eq!(b.to_string(), "3");
        let mut m = Bound::constant(3);
        m.exprs.insert(LinExpr::of_var(var("i")));
        assert_eq!(m.to_string(), "{3,P0.i}");
    }
}
