//! Contiguous symbolic rank ranges `[lb..ub]`.

use std::fmt;

use mpl_domains::{ConstraintGraph, LinExpr, PsetId};

use crate::bound::Bound;

/// A contiguous, inclusive range of process ranks with symbolic bounds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcRange {
    /// Lower bound (inclusive).
    pub lb: Bound,
    /// Upper bound (inclusive).
    pub ub: Bound,
}

/// The result of subtracting one range from another (when decidable).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubtractOutcome {
    /// Nothing left: the subtrahend covers the whole range.
    Empty,
    /// A single contiguous remainder.
    One(ProcRange),
    /// The subtrahend sat strictly inside: two remainders (low, high).
    Two(ProcRange, ProcRange),
}

impl ProcRange {
    /// `[lb..ub]` from bounds.
    #[must_use]
    pub fn new(lb: Bound, ub: Bound) -> ProcRange {
        ProcRange { lb, ub }
    }

    /// `[lo..hi]` from expressions.
    #[must_use]
    pub fn from_exprs(lo: LinExpr, hi: LinExpr) -> ProcRange {
        ProcRange::new(Bound::of(lo), Bound::of(hi))
    }

    /// The full process range `[0 .. np-1]`.
    #[must_use]
    pub fn all_procs() -> ProcRange {
        ProcRange::from_exprs(
            LinExpr::constant(0),
            LinExpr::var_plus(mpl_domains::NsVar::Np, -1),
        )
    }

    /// A singleton `[e..e]`.
    #[must_use]
    pub fn singleton(e: LinExpr) -> ProcRange {
        ProcRange::from_exprs(e, e)
    }

    /// Saturates both bounds with every alias the graph knows.
    pub fn saturate(&mut self, cg: &mut ConstraintGraph) {
        self.lb.saturate(cg);
        self.ub.saturate(cg);
    }

    /// True if either bound lost all its aliases (unrepresentable).
    #[must_use]
    pub fn is_vacant(&self) -> bool {
        self.lb.is_vacant() || self.ub.is_vacant()
    }

    /// `Some(true)` if provably empty (`lb > ub`), `Some(false)` if
    /// provably non-empty (`lb ≤ ub`), `None` if unknown.
    pub fn is_empty(&self, cg: &mut ConstraintGraph) -> Option<bool> {
        if self.ub.provably_lt(cg, &self.lb) {
            return Some(true);
        }
        if self.lb.provably_le(cg, &self.ub) {
            return Some(false);
        }
        None
    }

    /// True if the range is provably a single rank (`lb = ub`).
    pub fn is_singleton(&self, cg: &mut ConstraintGraph) -> bool {
        self.lb.provably_eq(cg, &self.ub)
    }

    /// True if both bounds are provably equal to `other`'s.
    pub fn provably_eq(&self, cg: &mut ConstraintGraph, other: &ProcRange) -> bool {
        self.lb.provably_eq(cg, &other.lb) && self.ub.provably_eq(cg, &other.ub)
    }

    /// True if `other` is provably contained in `self`.
    pub fn provably_contains(&self, cg: &mut ConstraintGraph, other: &ProcRange) -> bool {
        self.lb.provably_le(cg, &other.lb) && other.ub.provably_le(cg, &self.ub)
    }

    /// True if `other` starts right after `self` ends
    /// (`other.lb = self.ub + 1`) — the merge condition for adjacent
    /// ranges.
    pub fn provably_adjacent_before(&self, cg: &mut ConstraintGraph, other: &ProcRange) -> bool {
        self.ub.plus(1).provably_eq(cg, &other.lb)
    }

    /// Merges `self ∪ other` when `other` is provably adjacent after
    /// `self`.
    pub fn merge_adjacent(&self, cg: &mut ConstraintGraph, other: &ProcRange) -> Option<ProcRange> {
        self.provably_adjacent_before(cg, other)
            .then(|| ProcRange::new(self.lb.clone(), other.ub.clone()))
    }

    /// The range shifted by a constant (`[lb+c .. ub+c]`).
    #[must_use]
    pub fn plus(&self, c: i64) -> ProcRange {
        ProcRange::new(self.lb.plus(c), self.ub.plus(c))
    }

    /// Renames per-set bound variables between namespaces.
    #[must_use]
    pub fn renamed(&self, from: PsetId, to: PsetId) -> ProcRange {
        ProcRange::new(self.lb.renamed(from, to), self.ub.renamed(from, to))
    }

    /// Pointwise bound widening (alias-set intersection). The result may
    /// be vacant; callers treat that as "cannot represent" (⊤).
    #[must_use]
    pub fn widen(&self, newer: &ProcRange) -> ProcRange {
        ProcRange::new(self.lb.widen(&newer.lb), self.ub.widen(&newer.ub))
    }

    /// `self − sub`. Requires `sub` to be provably non-empty and
    /// contained in `self`; the remainders
    /// `[self.lb .. sub.lb-1]` and `[sub.ub+1 .. self.ub]` are then
    /// correct *regardless of whether they are empty* (an empty symbolic
    /// range simply denotes no processes), so only provably-empty
    /// remainders are filtered out here — possibly-empty ones are
    /// returned and resolved by later facts (e.g. the loop-exit edge of
    /// Fig 5 proving `[np..np-1]` empty).
    ///
    /// ```
    /// use mpl_domains::{ConstraintGraph, LinExpr, NsVar};
    /// use mpl_procset::{ProcRange, SubtractOutcome};
    ///
    /// let mut cg = ConstraintGraph::new();
    /// cg.assert_le(&NsVar::Zero, &NsVar::Np, -4); // np >= 4
    /// let receivers = ProcRange::from_exprs(
    ///     LinExpr::constant(1),
    ///     LinExpr::var_plus(NsVar::Np, -1),
    /// );
    /// let matched = ProcRange::from_exprs(LinExpr::constant(1), LinExpr::constant(1));
    /// let SubtractOutcome::One(rest) = receivers.subtract(&mut cg, &matched).unwrap()
    /// else { unreachable!() };
    /// assert_eq!(rest.to_string(), "[2..np-1]");
    /// ```
    pub fn subtract(&self, cg: &mut ConstraintGraph, sub: &ProcRange) -> Option<SubtractOutcome> {
        if !self.provably_contains(cg, sub) || sub.is_empty(cg) != Some(false) {
            return None;
        }
        let mut low = ProcRange::new(self.lb.clone(), sub.lb.plus(-1));
        low.saturate(cg);
        let mut high = ProcRange::new(sub.ub.plus(1), self.ub.clone());
        high.saturate(cg);
        let keep_low = low.is_empty(cg) != Some(true);
        let keep_high = high.is_empty(cg) != Some(true);
        Some(match (keep_low, keep_high) {
            (false, false) => SubtractOutcome::Empty,
            (true, false) => SubtractOutcome::One(low),
            (false, true) => SubtractOutcome::One(high),
            (true, true) => SubtractOutcome::Two(low, high),
        })
    }

    /// The concrete size of the range, when both bounds are constants.
    pub fn size_if_constant(&self, cg: &mut ConstraintGraph) -> Option<i64> {
        let lo = self
            .lb
            .as_constant()
            .or_else(|| self.lb.exprs().iter().find_map(|e| cg.eval_expr(e)))?;
        let hi = self
            .ub
            .as_constant()
            .or_else(|| self.ub.exprs().iter().find_map(|e| cg.eval_expr(e)))?;
        Some((hi - lo + 1).max(0))
    }
}

impl fmt::Display for ProcRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}..{}]", self.lb, self.ub)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpl_domains::NsVar;

    fn var(name: &str) -> NsVar {
        NsVar::pset(PsetId(0), name)
    }

    fn np_minus(c: i64) -> LinExpr {
        LinExpr::var_plus(NsVar::Np, -c)
    }

    /// A graph knowing np >= 2.
    fn cg_np(min_np: i64) -> ConstraintGraph {
        let mut cg = ConstraintGraph::new();
        cg.assert_le(&NsVar::Zero, &NsVar::Np, -min_np);
        cg
    }

    #[test]
    fn all_procs_nonempty_when_np_positive() {
        let mut cg = cg_np(1);
        let r = ProcRange::all_procs();
        assert_eq!(r.is_empty(&mut cg), Some(false));
    }

    #[test]
    fn emptiness_of_tail_range() {
        // [np..np-1] is provably empty.
        let mut cg = cg_np(1);
        let r = ProcRange::from_exprs(LinExpr::of_var(NsVar::Np), np_minus(1));
        assert_eq!(r.is_empty(&mut cg), Some(true));
    }

    #[test]
    fn emptiness_unknown_without_facts() {
        let mut cg = ConstraintGraph::new();
        let r = ProcRange::from_exprs(LinExpr::constant(1), np_minus(1));
        // With no lower bound on np, [1..np-1] may or may not be empty.
        assert_eq!(r.is_empty(&mut cg), None);
    }

    #[test]
    fn singleton_detection() {
        let mut cg = ConstraintGraph::new();
        cg.assert_eq_const(var("i"), 3);
        let r = ProcRange::from_exprs(LinExpr::of_var(var("i")), LinExpr::constant(3));
        assert!(r.is_singleton(&mut cg));
        assert_eq!(r.is_empty(&mut cg), Some(false));
    }

    #[test]
    fn containment_and_equality() {
        let mut cg = cg_np(3);
        let all = ProcRange::all_procs();
        let inner = ProcRange::from_exprs(LinExpr::constant(1), np_minus(1));
        assert!(all.provably_contains(&mut cg, &inner));
        assert!(!inner.provably_contains(&mut cg, &all));
        assert!(all.provably_eq(&mut cg, &ProcRange::all_procs().clone()));
    }

    #[test]
    fn adjacency_and_merge() {
        let mut cg = cg_np(2);
        let root = ProcRange::from_exprs(LinExpr::constant(0), LinExpr::constant(0));
        let rest = ProcRange::from_exprs(LinExpr::constant(1), np_minus(1));
        assert!(root.provably_adjacent_before(&mut cg, &rest));
        let merged = root.merge_adjacent(&mut cg, &rest).unwrap();
        assert!(merged.provably_eq(&mut cg, &ProcRange::all_procs()));
        assert!(rest.merge_adjacent(&mut cg, &root).is_none());
    }

    #[test]
    fn subtract_prefix_like_fig5() {
        // Receivers [1..np-1]; matched [i..i] with i = 1 → remainder
        // [2..np-1], i.e. [i+1..np-1].
        let mut cg = cg_np(3);
        cg.assert_eq_const(var("i"), 1);
        let receivers = ProcRange::from_exprs(LinExpr::constant(1), np_minus(1));
        let mut matched = ProcRange::singleton(LinExpr::of_var(var("i")));
        matched.saturate(&mut cg);
        let out = receivers.subtract(&mut cg, &matched).unwrap();
        let SubtractOutcome::One(rem) = out else {
            panic!("expected one remainder")
        };
        assert!(rem.lb.provably_eq(&mut cg, &Bound::constant(2)));
        // The remainder's lower bound also carries the symbolic alias i+1.
        assert!(rem.lb.exprs().contains(&LinExpr::var_plus(var("i"), 1)));
    }

    #[test]
    fn subtract_whole_is_empty() {
        let mut cg = cg_np(2);
        let r = ProcRange::from_exprs(LinExpr::constant(1), np_minus(1));
        assert_eq!(
            r.subtract(&mut cg, &r.clone()),
            Some(SubtractOutcome::Empty)
        );
    }

    #[test]
    fn subtract_suffix() {
        let mut cg = cg_np(4);
        let r = ProcRange::from_exprs(LinExpr::constant(0), LinExpr::constant(9));
        let sub = ProcRange::from_exprs(LinExpr::constant(5), LinExpr::constant(9));
        let SubtractOutcome::One(rem) = r.subtract(&mut cg, &sub).unwrap() else {
            panic!()
        };
        assert!(rem.lb.provably_eq(&mut cg, &Bound::constant(0)));
        assert!(rem.ub.provably_eq(&mut cg, &Bound::constant(4)));
    }

    #[test]
    fn subtract_middle_gives_two() {
        let mut cg = ConstraintGraph::new();
        let r = ProcRange::from_exprs(LinExpr::constant(0), LinExpr::constant(9));
        let sub = ProcRange::from_exprs(LinExpr::constant(3), LinExpr::constant(5));
        let SubtractOutcome::Two(lo, hi) = r.subtract(&mut cg, &sub).unwrap() else {
            panic!()
        };
        assert!(lo.ub.provably_eq(&mut cg, &Bound::constant(2)));
        assert!(hi.lb.provably_eq(&mut cg, &Bound::constant(6)));
    }

    #[test]
    fn subtract_undecidable_returns_none() {
        let mut cg = ConstraintGraph::new();
        let r = ProcRange::from_exprs(LinExpr::constant(0), np_minus(1));
        let sub = ProcRange::singleton(LinExpr::of_var(var("k"))); // unknown k
        assert_eq!(r.subtract(&mut cg, &sub), None);
    }

    #[test]
    fn widen_converges_to_loop_invariant() {
        // First iteration: released set [1..1] with ub aliases {1, i};
        // second: [1..2] with ub aliases {2, i}. Widening leaves [1..i].
        let mut cg1 = ConstraintGraph::new();
        cg1.assert_eq_const(var("i"), 1);
        let mut first = ProcRange::from_exprs(LinExpr::constant(1), LinExpr::of_var(var("i")));
        first.saturate(&mut cg1);

        let mut cg2 = ConstraintGraph::new();
        cg2.assert_eq_const(var("i"), 2);
        let mut second = ProcRange::from_exprs(LinExpr::constant(1), LinExpr::of_var(var("i")));
        second.saturate(&mut cg2);

        let w = first.widen(&second);
        assert!(!w.is_vacant());
        assert_eq!(w.ub.exprs().len(), 1);
        assert!(w.ub.exprs().contains(&LinExpr::of_var(var("i"))));
        // Widening with itself is stable (fixpoint).
        let w2 = w.widen(&w);
        assert_eq!(w, w2);
    }

    #[test]
    fn widen_unrelated_is_vacant() {
        let a = ProcRange::from_exprs(LinExpr::constant(0), LinExpr::constant(1));
        let b = ProcRange::from_exprs(LinExpr::constant(0), LinExpr::constant(2));
        assert!(a.widen(&b).is_vacant());
    }

    #[test]
    fn size_if_constant() {
        let mut cg = ConstraintGraph::new();
        cg.assert_eq_const(&NsVar::Np, 8);
        let r = ProcRange::all_procs();
        assert_eq!(r.size_if_constant(&mut cg), Some(8));
        let mut cg2 = ConstraintGraph::new();
        let r2 = ProcRange::all_procs();
        assert_eq!(r2.size_if_constant(&mut cg2), None);
    }

    #[test]
    fn display_form() {
        let r = ProcRange::from_exprs(LinExpr::constant(1), np_minus(1));
        assert_eq!(r.to_string(), "[1..np-1]");
    }

    #[test]
    fn plus_and_rename() {
        let r = ProcRange::singleton(LinExpr::of_var(var("i")));
        let shifted = r.plus(2);
        assert!(shifted.lb.exprs().contains(&LinExpr::var_plus(var("i"), 2)));
        let renamed = r.renamed(PsetId(0), PsetId(3));
        assert!(renamed
            .lb
            .exprs()
            .contains(&LinExpr::of_var(NsVar::pset(PsetId(3), "i"))));
    }
}
