//! The §IX profile (experiment E6) and the closure ablation (E8).
//!
//! The paper reports, for its fan-out broadcast analysis on a 2.8 GHz
//! Opteron: 381 s total, 92.5 % of it inside constraint-graph transitive
//! closure — 217 O(n³) closures averaging 52.3 variables and 78 O(n²)
//! operations averaging 66.3 variables. This binary prints the same rows
//! for our implementation (absolute numbers differ; the *shape* — closure
//! dominance, operation counts growing with the pattern's process-set
//! count — is the reproduction target).
//!
//! Run with `cargo run -p mpl-bench --bin profile --release`.
//! Pass `--ablation` to add the full-reclose ablation (the unoptimized
//! prototype behaviour, §IX roadmap). Pass `--check` to fail (exit 1)
//! unless the per-phase breakdown accounts for the measured total on the
//! mid-size programs — the smoke test `scripts/verify.sh` runs. Pass
//! `--par N` to profile under the frontier-parallel round executor
//! (the round-wait/round-merge phases join the breakdown and the
//! coverage check).

use mpl_bench::{profiled_run_par, ProfiledRun};
use mpl_core::Client;
use mpl_domains::set_force_full_closure;
use mpl_lang::corpus::{self, GridDims};

/// The phase breakdown must explain the run: on programs large enough to
/// be out of timer noise, `|phase_sum - total| <= 10% of total`.
fn check_phase_coverage(runs: &[ProfiledRun]) -> bool {
    let mut ok = true;
    for run in runs {
        // Sub-millisecond runs are dominated by timer granularity.
        if run.profile.total.as_micros() < 2_000 {
            continue;
        }
        let sum = run.profile.phase_sum().as_secs_f64();
        let total = run.profile.total.as_secs_f64();
        let gap = (total - sum).abs() / total;
        let verdict = if gap <= 0.10 { "ok" } else { "FAIL" };
        println!(
            "phase check {:<26} sum {:>9.2?} of {:>9.2?} (gap {:>5.1}%) {}",
            run.name,
            run.profile.phase_sum(),
            run.profile.total,
            100.0 * gap,
            verdict,
        );
        ok &= gap <= 0.10;
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ablation = args.iter().any(|a| a == "--ablation");
    let check = args.iter().any(|a| a == "--check");
    let par: usize = args
        .iter()
        .position(|a| a == "--par")
        .and_then(|i| args.get(i + 1))
        .map_or(1, |v| v.parse().expect("--par takes a worker count"));
    assert!(par >= 1, "--par must be at least 1");
    if par > 1 {
        println!("intra-analysis workers: {par} (frontier-parallel rounds)");
    }

    println!("================================================================");
    println!("§IX profile — closure operations during pCFG analysis (E6)");
    println!("================================================================");
    println!(
        "{:<26} {:<10} {:>9} {:>8} {:>9} {:>8} {:>9} {:>9} {:>8}",
        "program", "client", "steps", "O(n³)", "avg vars", "O(n²)", "avg vars", "total", "closure%"
    );
    println!("{}", "-".repeat(104));

    let programs = vec![
        (corpus::fanout_broadcast(), Client::Simple),
        (corpus::exchange_with_root(), Client::Simple),
        (corpus::gather_to_root(), Client::Simple),
        (corpus::mdcask_full(), Client::Simple),
        (corpus::nearest_neighbor_shift(), Client::Simple),
        (corpus::left_shift(), Client::Simple),
        (corpus::fig2_exchange(), Client::Simple),
        (
            corpus::nas_cg_transpose_square(GridDims::Symbolic),
            Client::Cartesian,
        ),
        (
            corpus::nas_cg_transpose_rect(GridDims::Symbolic),
            Client::Cartesian,
        ),
        // The paper's variable-count regime (52-66 vars per graph) and
        // beyond (the E18 state-sharing stress row).
        (corpus::exchange_with_root_wide(24), Client::Simple),
        (corpus::exchange_with_root_wide(48), Client::Simple),
        (corpus::exchange_with_root_wide(96), Client::Simple),
    ];

    let mut runs = Vec::new();
    for (prog, client) in &programs {
        let run = profiled_run_par(prog, *client, par);
        println!(
            "{:<26} {:<10} {:>9} {:>8} {:>9.1} {:>8} {:>9.1} {:>8.2?} {:>7.1}%",
            run.name,
            format!("{client:?}"),
            run.result.steps,
            run.closure.full_closures,
            run.closure.avg_full_vars(),
            run.closure.incremental_closures,
            run.closure.avg_incremental_vars(),
            run.total,
            100.0 * run.closure_share(),
        );
        runs.push(run);
    }

    println!();
    println!("================================================================");
    println!("per-phase engine breakdown (E18)");
    println!("================================================================");
    println!(
        "{:<26} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>7} {:>10}",
        "program",
        "transfer",
        "match",
        "join/widen",
        "admission",
        "rnd-wait",
        "rnd-merge",
        "total",
        "stored",
        "~bytes"
    );
    println!("{}", "-".repeat(122));
    for run in &runs {
        let p = &run.profile;
        println!(
            "{:<26} {:>10.2?} {:>10.2?} {:>10.2?} {:>10.2?} {:>10.2?} {:>10.2?} {:>10.2?} {:>7} {:>10}",
            run.name,
            p.transfer,
            p.matching,
            p.join_widen,
            p.admission,
            p.round_wait,
            p.round_merge,
            p.total,
            p.stored.locations,
            p.stored.approx_bytes,
        );
    }

    if check {
        println!();
        if !check_phase_coverage(&runs) {
            eprintln!("phase breakdown does not account for the measured totals");
            std::process::exit(1);
        }
    }

    if ablation {
        println!();
        println!("================================================================");
        println!("Ablation (E8): incremental O(n²) closure vs full re-closure");
        println!("================================================================");
        println!(
            "{:<26} {:>14} {:>14} {:>9} {:>13} {:>13}",
            "program", "incremental", "full-reclose", "speedup", "ops(incr)", "ops(full)"
        );
        println!("{}", "-".repeat(96));
        // The widest program is too slow to re-run under full re-closure;
        // measure the ablation on the small and mid-size workloads.
        let ablation_set = vec![
            (corpus::fanout_broadcast(), Client::Simple),
            (corpus::exchange_with_root(), Client::Simple),
            (corpus::exchange_with_root_wide(24), Client::Simple),
        ];
        for (prog, client) in &ablation_set {
            let fast = profiled_run_par(prog, *client, 1);
            set_force_full_closure(true);
            let slow = profiled_run_par(prog, *client, 1);
            set_force_full_closure(false);
            println!(
                "{:<26} {:>14.2?} {:>14.2?} {:>8.2}x {:>6}+{:>6} {:>6}+{:>6}",
                prog.name,
                fast.total,
                slow.total,
                slow.total.as_secs_f64() / fast.total.as_secs_f64().max(1e-9),
                fast.closure.full_closures,
                fast.closure.incremental_closures,
                slow.closure.full_closures,
                slow.closure.incremental_closures,
            );
        }
    }
}
