//! The §IX profile (experiment E6) and the closure ablation (E8).
//!
//! The paper reports, for its fan-out broadcast analysis on a 2.8 GHz
//! Opteron: 381 s total, 92.5 % of it inside constraint-graph transitive
//! closure — 217 O(n³) closures averaging 52.3 variables and 78 O(n²)
//! operations averaging 66.3 variables. This binary prints the same rows
//! for our implementation (absolute numbers differ; the *shape* — closure
//! dominance, operation counts growing with the pattern's process-set
//! count — is the reproduction target).
//!
//! Run with `cargo run -p mpl-bench --bin profile --release`.
//! Pass `--ablation` to add the full-reclose ablation (the unoptimized
//! prototype behaviour, §IX roadmap).

use mpl_bench::profiled_run;
use mpl_core::Client;
use mpl_domains::set_force_full_closure;
use mpl_lang::corpus::{self, GridDims};

fn main() {
    let ablation = std::env::args().any(|a| a == "--ablation");

    println!("================================================================");
    println!("§IX profile — closure operations during pCFG analysis (E6)");
    println!("================================================================");
    println!(
        "{:<26} {:<10} {:>9} {:>8} {:>9} {:>8} {:>9} {:>9} {:>8}",
        "program", "client", "steps", "O(n³)", "avg vars", "O(n²)", "avg vars", "total", "closure%"
    );
    println!("{}", "-".repeat(104));

    let programs = vec![
        (corpus::fanout_broadcast(), Client::Simple),
        (corpus::exchange_with_root(), Client::Simple),
        (corpus::gather_to_root(), Client::Simple),
        (corpus::mdcask_full(), Client::Simple),
        (corpus::nearest_neighbor_shift(), Client::Simple),
        (corpus::left_shift(), Client::Simple),
        (corpus::fig2_exchange(), Client::Simple),
        (
            corpus::nas_cg_transpose_square(GridDims::Symbolic),
            Client::Cartesian,
        ),
        (
            corpus::nas_cg_transpose_rect(GridDims::Symbolic),
            Client::Cartesian,
        ),
        // The paper's variable-count regime (52-66 vars per graph).
        (corpus::exchange_with_root_wide(24), Client::Simple),
        (corpus::exchange_with_root_wide(48), Client::Simple),
    ];

    for (prog, client) in &programs {
        let run = profiled_run(prog, *client);
        println!(
            "{:<26} {:<10} {:>9} {:>8} {:>9.1} {:>8} {:>9.1} {:>8.2?} {:>7.1}%",
            run.name,
            format!("{client:?}"),
            run.result.steps,
            run.closure.full_closures,
            run.closure.avg_full_vars(),
            run.closure.incremental_closures,
            run.closure.avg_incremental_vars(),
            run.total,
            100.0 * run.closure_share(),
        );
    }

    if ablation {
        println!();
        println!("================================================================");
        println!("Ablation (E8): incremental O(n²) closure vs full re-closure");
        println!("================================================================");
        println!(
            "{:<26} {:>14} {:>14} {:>9} {:>13} {:>13}",
            "program", "incremental", "full-reclose", "speedup", "ops(incr)", "ops(full)"
        );
        println!("{}", "-".repeat(96));
        // The widest program is too slow to re-run under full re-closure;
        // measure the ablation on the small and mid-size workloads.
        let ablation_set = vec![
            (corpus::fanout_broadcast(), Client::Simple),
            (corpus::exchange_with_root(), Client::Simple),
            (corpus::exchange_with_root_wide(24), Client::Simple),
        ];
        for (prog, client) in &ablation_set {
            let fast = profiled_run(prog, *client);
            set_force_full_closure(true);
            let slow = profiled_run(prog, *client);
            set_force_full_closure(false);
            println!(
                "{:<26} {:>14.2?} {:>14.2?} {:>8.2}x {:>6}+{:>6} {:>6}+{:>6}",
                prog.name,
                fast.total,
                slow.total,
                slow.total.as_secs_f64() / fast.total.as_secs_f64().max(1e-9),
                fast.closure.full_closures,
                fast.closure.incremental_closures,
                slow.closure.full_closures,
                slow.closure.incremental_closures,
            );
        }
    }
}
