//! Regenerates the paper's worked tables and figures (experiments
//! E1–E5, E10 of DESIGN.md) as text tables.
//!
//! Run with `cargo run -p mpl-bench --bin tables`.

use std::collections::BTreeMap;

use mpl_cfg::Cfg;
use mpl_core::{analyze_cfg, classify, classify_pairs, AnalysisConfig, Client, Verdict};
use mpl_hsm::{AssumptionCtx, Hsm, SymPoly};
use mpl_lang::corpus::{self, GridDims};
use mpl_sim::{SimConfig, Simulator};

fn main() {
    table_i_hsm_algebra();
    figures_e1_to_e4();
    pattern_table_e10();
    mpicfg_precision_table();
    critical_path_table();
    parallel_batch_table_e15();
}

/// E15: wall time for the full-corpus batch analysis at 1/2/4/8 workers
/// (the `mpl-runtime` work-stealing pool behind `mpl analyze-corpus`).
/// Speedup is relative to one worker; on a single-core host it stays
/// near 1× and only reflects pool overhead.
fn parallel_batch_table_e15() {
    use mpl_core::{BatchAnalyzer, BatchJob};
    use std::time::Instant;

    println!("================================================================");
    println!("Parallel batch analysis: corpus wall time by worker count (E15)");
    println!("================================================================");
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>8}",
        "jobs", "wall", "speedup", "programs", "exact"
    );
    println!("{}", "-".repeat(56));
    let mut base = None;
    for workers in [1usize, 2, 4, 8] {
        let mut batch = BatchAnalyzer::new().workers(workers);
        for prog in corpus::all() {
            batch.push(BatchJob::new(
                prog.name,
                prog.program,
                AnalysisConfig::default(),
            ));
        }
        let start = Instant::now();
        let report = batch.run();
        let wall = start.elapsed();
        let baseline = *base.get_or_insert(wall);
        println!(
            "{:<10} {:>12.2?} {:>9.2}x {:>10} {:>8}",
            workers,
            wall,
            baseline.as_secs_f64() / wall.as_secs_f64().max(1e-9),
            report.summary.programs,
            report.summary.exact
        );
    }
    println!();
}

/// Precision against the MPI-CFG baseline (paper §II): statement pairs
/// retained by each analysis (fewer = more precise; both must cover the
/// runtime topology).
fn mpicfg_precision_table() {
    use mpl_core::mpi_cfg_topology;
    println!("================================================================");
    println!("Precision vs the MPI-CFG baseline (paper SII)");
    println!("================================================================");
    println!(
        "{:<26} {:>10} {:>10} {:>8} {:>10}",
        "program", "all pairs", "MPI-CFG", "pCFG", "runtime@8"
    );
    println!("{}", "-".repeat(70));
    for prog in [
        corpus::fig2_exchange(),
        corpus::exchange_with_root(),
        corpus::fanout_broadcast(),
        corpus::gather_to_root(),
        corpus::mdcask_full(),
        corpus::nearest_neighbor_shift(),
        corpus::left_shift(),
        corpus::const_relay(),
    ] {
        let cfg = Cfg::build(&prog.program);
        let baseline = mpi_cfg_topology(&cfg);
        let result = analyze_cfg(&cfg, &AnalysisConfig::default());
        let runtime = Simulator::from_cfg(cfg, 8)
            .run()
            .map(|o| o.topology.site_pairs().len())
            .unwrap_or(0);
        println!(
            "{:<26} {:>10} {:>10} {:>8} {:>10}",
            prog.name,
            baseline.all_pairs(),
            baseline.pairs().len(),
            if result.is_exact() {
                result.matches.len().to_string()
            } else {
                "⊤".into()
            },
            runtime
        );
    }
    println!();
}

/// Communication critical path (logical message hops) per pattern — the
/// quantitative motivation for collective replacement (SI, Fig 1).
fn critical_path_table() {
    println!("================================================================");
    println!("Communication critical path (message hops) by pattern");
    println!("================================================================");
    println!(
        "{:<26} {:>6} {:>6} {:>6}   growth",
        "program", "np=8", "np=16", "np=32"
    );
    println!("{}", "-".repeat(66));
    for prog in [
        corpus::exchange_with_root(),
        corpus::fanout_broadcast(),
        corpus::tree_broadcast(),
        corpus::nearest_neighbor_shift(),
        corpus::pipeline_double(),
        corpus::ring_conditional(),
    ] {
        let mut paths = Vec::new();
        for np in [8u64, 16, 32] {
            let out = Simulator::new(&prog.program, np).run().unwrap();
            paths.push(out.critical_path());
        }
        let growth = if paths[2] >= 3 * paths[0] {
            "~linear (a tree collective would be O(log np))"
        } else if paths[2] > paths[0] {
            "~logarithmic"
        } else {
            "O(1)"
        };
        println!(
            "{:<26} {:>6} {:>6} {:>6}   {growth}",
            prog.name, paths[0], paths[1], paths[2]
        );
    }
    // The transpose is O(1) regardless of grid size.
    for nrows in [3i64, 4] {
        let prog = corpus::nas_cg_transpose_square(GridDims::Concrete {
            nrows,
            ncols: nrows,
        });
        let out = Simulator::new(&prog.program, (nrows * nrows) as u64)
            .run()
            .unwrap();
        println!(
            "{:<26} np={:<3} critical path = {} (O(1): already a parallel exchange)",
            prog.name,
            nrows * nrows,
            out.critical_path()
        );
    }
}

/// E5 — Table I: the HSM operations and equality rules, replayed on the
/// paper's own examples.
fn table_i_hsm_algebra() {
    println!("================================================================");
    println!("Table I — HSM operations (paper's worked examples)");
    println!("================================================================");
    let ctx = AssumptionCtx::new();
    let c = SymPoly::constant;

    let h = Hsm::leaf(c(11)).repeat(c(4), c(5));
    println!(
        "[11 : 4, 5]                    = {:?}",
        h.concretize(&BTreeMap::new()).unwrap()
    );

    let h = Hsm::leaf(c(12)).repeat(c(15), c(2));
    let m = h.modulo(&c(6), &ctx).unwrap();
    println!(
        "[12 : 15, 2] % 6               = {} (paper: [[0:3,2] : 5, 0])",
        m.seq_canonical(&ctx)
    );

    let h = Hsm::leaf(c(20)).repeat(c(6), c(5));
    let d = h.div(&c(10), &ctx).unwrap();
    println!(
        "[20 : 6, 5] / 10               = {:?} (paper: <2,2,3,3,4,4>)",
        d.concretize(&BTreeMap::new()).unwrap()
    );

    // Sequence-equality (reshape) rule.
    let flat = Hsm::leaf(c(2)).repeat(c(6), c(2));
    let nested = Hsm::leaf(c(2)).repeat(c(3), c(2)).repeat(c(2), c(6));
    println!(
        "[2:6,2] seq-equals [[2:3,2]:2,6]: {}",
        flat.seq_eq(&nested, &ctx)
    );

    // Interleave set-equality rule.
    let interleaved = Hsm::leaf(c(2)).repeat(c(3), c(4)).repeat(c(2), c(2));
    println!(
        "[[2:3,2*2]:2,2] set-equals [2:6,2]: {} (sequence-equal: {})",
        interleaved.set_eq(&flat, &ctx),
        interleaved.seq_eq(&flat, &ctx)
    );

    // Transpose set-equality rule.
    let a = Hsm::leaf(c(1)).repeat(c(2), c(1)).repeat(c(3), c(10));
    let b = Hsm::leaf(c(1)).repeat(c(3), c(10)).repeat(c(2), c(1));
    println!(
        "[[1:2,1]:3,10] set-equals [[1:3,10]:2,1]: {}\n",
        a.set_eq(&b, &ctx)
    );
}

/// E1–E4: the per-figure analysis results.
fn figures_e1_to_e4() {
    println!("================================================================");
    println!("Figures 2, 5, 6, 7 — pCFG analysis results");
    println!("================================================================");
    println!(
        "{:<26} {:<10} {:<10} {:<8} notes",
        "program (paper ref)", "client", "verdict", "matches"
    );
    println!("{}", "-".repeat(96));

    let entries: Vec<(corpus::CorpusProgram, Client, &str)> = vec![
        (
            corpus::fig2_exchange(),
            Client::Simple,
            "both prints proven = 5",
        ),
        (
            corpus::exchange_with_root(),
            Client::Simple,
            "loop fixpoint {[0],[1..i-1],[i..np-1]}",
        ),
        (corpus::fanout_broadcast(), Client::Simple, "§IX workload"),
        (corpus::gather_to_root(), Client::Simple, ""),
        (corpus::mdcask_full(), Client::Simple, "Fig 1 two-phase"),
        (
            corpus::nas_cg_transpose_square(GridDims::Symbolic),
            Client::Cartesian,
            "HSM identity+surjection",
        ),
        (
            corpus::nas_cg_transpose_square(GridDims::Symbolic),
            Client::Simple,
            "expected ⊤: needs HSMs",
        ),
        (
            corpus::nas_cg_transpose_rect(GridDims::Symbolic),
            Client::Cartesian,
            "1:2 grid",
        ),
        (
            corpus::nearest_neighbor_shift(),
            Client::Simple,
            "unbounded np",
        ),
        (corpus::left_shift(), Client::Simple, "mirror shift"),
    ];
    for (prog, client, note) in entries {
        let result = mpl_core::analyze(
            &prog.program,
            &AnalysisConfig::builder()
                .client(client)
                .build()
                .expect("valid config"),
        );
        let verdict = match &result.verdict {
            Verdict::Exact => "exact",
            Verdict::Deadlock { .. } => "deadlock",
            _ => "⊤",
        };
        println!(
            "{:<26} {:<10} {:<10} {:<8} {}",
            format!("{} ({})", prog.name, prog.paper_ref),
            format!("{client:?}"),
            verdict,
            result.matches.len(),
            note
        );
    }
    println!();
}

/// E10: detected pattern and collective hint per corpus program, with the
/// simulator's ground-truth classification.
fn pattern_table_e10() {
    println!("================================================================");
    println!("Pattern detection and collective-replacement hints (E10)");
    println!("================================================================");
    println!(
        "{:<26} {:<10} {:<20} {:<20} hint",
        "program", "verdict", "static pattern", "runtime (np=9)"
    );
    println!("{}", "-".repeat(110));
    for prog in corpus::all() {
        let cfg = Cfg::build(&prog.program);
        let result = analyze_cfg(&cfg, &AnalysisConfig::default());
        let verdict = match &result.verdict {
            Verdict::Exact => "exact",
            Verdict::Deadlock { .. } => "deadlock",
            _ => "⊤",
        };
        let pattern = classify(&result);
        let mut config = SimConfig::default();
        // Provide grid parameters for symbolic programs.
        config.initial_vars.insert("nrows".into(), 3);
        config.initial_vars.insert("ncols".into(), 3);
        let runtime = Simulator::from_cfg(cfg, 9)
            .with_config(config)
            .run()
            .ok()
            .filter(mpl_sim::Outcome::is_complete)
            .map_or("-".to_owned(), |o| {
                classify_pairs(&o.topology.rank_pairs(), 9).to_string()
            });
        println!(
            "{:<26} {:<10} {:<20} {:<20} {}",
            prog.name,
            verdict,
            pattern.to_string(),
            runtime,
            pattern.collective_hint().unwrap_or("-")
        );
    }
}
