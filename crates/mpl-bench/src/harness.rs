//! A minimal wall-clock bench harness for the `harness = false` bench
//! targets. It replaces the external criterion dependency so `cargo
//! bench` works with no registry access: warm up, calibrate an iteration
//! count to a target measurement window, then report mean/min per
//! iteration over a handful of samples.

use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET: Duration = Duration::from_millis(300);
/// Samples taken after calibration.
const SAMPLES: usize = 5;

/// A named group of benchmarks, printed as one table section.
pub struct Group {
    name: &'static str,
}

impl Group {
    /// Starts a group, printing its header.
    #[must_use]
    pub fn new(name: &'static str) -> Group {
        println!("\n== {name} ==");
        println!(
            "{:<44} {:>12} {:>12} {:>10}",
            "benchmark", "mean", "min", "iters"
        );
        Group { name }
    }

    /// Measures `f`, printing one table row.
    pub fn bench<R>(&self, label: &str, mut f: impl FnMut() -> R) {
        // Warm-up and calibration: how many iterations fit the window?
        let start = Instant::now();
        std::hint::black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let iters = (TARGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        let mut total = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..SAMPLES {
            let start = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(f());
            }
            let sample = start.elapsed() / u32::try_from(iters).unwrap_or(u32::MAX);
            total += sample;
            min = min.min(sample);
        }
        let mean = total / u32::try_from(SAMPLES).unwrap_or(1);
        println!("{label:<44} {mean:>12.2?} {min:>12.2?} {iters:>10}");
    }
}

impl Drop for Group {
    fn drop(&mut self) {
        let _ = self.name;
    }
}
