//! # mpl-bench — evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (see the
//! experiment index in `DESIGN.md`):
//!
//! * `cargo run -p mpl-bench --bin tables` — the per-figure analysis
//!   results (E1–E5, E10): verdicts, matched topologies, Table I HSM
//!   derivations and the pattern/collective table;
//! * `cargo run -p mpl-bench --bin profile` — the §IX profile (E6):
//!   closure operation counts, average variable counts and the share of
//!   analysis time spent in transitive closure, plus the full-closure
//!   ablation (E8);
//! * `cargo bench -p mpl-bench` — in-tree [`harness`] benches: closure
//!   scaling (E7), end-to-end analysis times (E6) and the closure
//!   ablation (E8).

pub mod harness;

use std::time::{Duration, Instant};

use mpl_core::{
    analyze_cfg_with, AnalysisConfig, AnalysisResult, Client, EngineProfile, StatsObserver,
};
use mpl_domains::ClosureStats;
use mpl_lang::corpus::CorpusProgram;

/// One measured analysis run with its closure profile.
#[derive(Debug, Clone)]
pub struct ProfiledRun {
    /// Corpus program name.
    pub name: &'static str,
    /// Client used.
    pub client: Client,
    /// The analysis result.
    pub result: AnalysisResult,
    /// Total wall-clock analysis time.
    pub total: Duration,
    /// Closure counters accumulated during the run.
    pub closure: ClosureStats,
    /// Per-phase engine breakdown (E18).
    pub profile: EngineProfile,
}

impl ProfiledRun {
    /// Fraction of the analysis time spent inside transitive closures —
    /// the paper's headline "92.5 %".
    #[must_use]
    pub fn closure_share(&self) -> f64 {
        if self.total.is_zero() {
            return 0.0;
        }
        self.closure.closure_time().as_secs_f64() / self.total.as_secs_f64()
    }
}

/// Runs `prog` under `client` with closure instrumentation.
///
/// The closure counters come from the engine's per-run
/// [`mpl_core::AnalysisSession`] delta ([`AnalysisResult::closure_stats`]),
/// so concurrent thread-local activity never needs a global reset.
#[must_use]
pub fn profiled_run(prog: &CorpusProgram, client: Client) -> ProfiledRun {
    profiled_run_par(prog, client, 1)
}

/// [`profiled_run`] with an intra-analysis worker count: `par > 1`
/// engages the frontier-parallel round executor (byte-identical
/// results; only the wall-clock phases shift).
#[must_use]
pub fn profiled_run_par(prog: &CorpusProgram, client: Client, par: usize) -> ProfiledRun {
    let config = AnalysisConfig::builder()
        .client(client)
        .intra_jobs(par)
        .build()
        .expect("default-based config is valid");
    let cfg = mpl_cfg::Cfg::build(&prog.program);
    let mut stats = StatsObserver::new();
    let start = Instant::now();
    let result = analyze_cfg_with(&cfg, &config, &mut stats);
    let total = start.elapsed();
    let closure = result.closure_stats;
    let profile = stats
        .profile()
        .copied()
        .expect("StatsObserver captures the engine profile on completion");
    ProfiledRun {
        name: prog.name,
        client,
        result,
        total,
        closure,
        profile,
    }
}
