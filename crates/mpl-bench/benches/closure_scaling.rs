//! E7: the O(n³) transitive closure is the §IX bottleneck — measure how
//! full and incremental closure scale with the variable count (the
//! paper's analyses averaged 52–66 variables).

use mpl_bench::harness::Group;
use mpl_domains::{ConstraintGraph, NsVar, PsetId};
use std::hint::black_box;

fn vars(n: usize) -> Vec<NsVar> {
    (0..n)
        .map(|i| NsVar::pset(PsetId((i % 7) as u32), format!("v{i}")))
        .collect()
}

/// A chain plus some cross edges: representative of the per-namespace
/// structure the analysis builds (id/loop-var relations).
fn seed_graph(vs: &[NsVar]) -> ConstraintGraph {
    let mut g = ConstraintGraph::new();
    for w in vs.windows(2) {
        g.assert_le(&w[0], &w[1], 1);
    }
    for (i, v) in vs.iter().enumerate().step_by(5) {
        g.assert_le(v, &vs[(i * 3 + 1) % vs.len()], 4);
    }
    g
}

fn main() {
    let full = Group::new("full_closure_on3");
    for n in [8usize, 16, 32, 52, 64, 96] {
        let vs = vars(n);
        full.bench(&format!("n={n}"), || {
            let mut g = seed_graph(&vs);
            g.close();
            black_box(g.is_bottom())
        });
    }
    drop(full);

    let incr = Group::new("incremental_closure_on2");
    for n in [8usize, 16, 32, 52, 64, 96] {
        let vs = vars(n);
        let mut base = seed_graph(&vs);
        base.close();
        incr.bench(&format!("n={n}"), || {
            let mut g = base.clone();
            // One new edge on a closed graph: the O(n²) path.
            g.assert_le(&vs[n - 1], &vs[0], -1);
            black_box(g.is_bottom())
        });
    }
    drop(incr);

    let lattice = Group::new("lattice_ops");
    for n in [16usize, 52] {
        let vs = vars(n);
        let a = seed_graph(&vs);
        let mut b2 = seed_graph(&vs);
        b2.assert_le(&vs[0], &vs[n / 2], 2);
        lattice.bench(&format!("join n={n}"), || black_box(a.join(&b2)));
        lattice.bench(&format!("widen n={n}"), || black_box(a.widen(&b2)));
    }
}
