//! E8: cost of the observer seam. The engine is generic over
//! `AnalysisObserver`, so the default `NoopObserver` must monomorphize
//! to the same code as a hard-wired engine — rows 1 and 2 should be
//! statistically indistinguishable, while the live `TraceObserver`
//! (string formatting per step) shows what the seam saves when off.

use mpl_bench::harness::Group;
use mpl_cfg::Cfg;
use mpl_core::observer::{NoopObserver, ObserverStack, StatsObserver, TraceObserver};
use mpl_core::{analyze_cfg, analyze_cfg_with, AnalysisConfig, Client};
use mpl_lang::corpus;
use std::hint::black_box;

fn main() {
    let group = Group::new("observer_overhead");
    let prog = corpus::mdcask_full();
    let cfg = Cfg::build(&prog.program);
    let config = AnalysisConfig::builder()
        .client(Client::Simple)
        .build()
        .expect("valid config");

    // Baseline: the public entry point with no observer attached.
    group.bench("analyze_plain", || black_box(analyze_cfg(&cfg, &config)));
    // The seam with the zero-cost default: should match the baseline.
    group.bench("analyze_noop_observer", || {
        black_box(analyze_cfg_with(&cfg, &config, &mut NoopObserver))
    });
    // Counter bumps only.
    group.bench("analyze_stats_observer", || {
        let mut stats = StatsObserver::new();
        black_box(analyze_cfg_with(&cfg, &config, &mut stats))
    });
    // Full trace capture: one formatted line per step.
    group.bench("analyze_trace_observer", || {
        let mut tracer = TraceObserver::new();
        black_box(analyze_cfg_with(&cfg, &config, &mut tracer))
    });
    // Dynamic stacking (dyn dispatch per hook) with both layers live.
    group.bench("analyze_stacked_observers", || {
        let mut tracer = TraceObserver::new();
        let mut stats = StatsObserver::new();
        let mut stack = ObserverStack::new();
        stack.push(&mut tracer);
        stack.push(&mut stats);
        black_box(analyze_cfg_with(&cfg, &config, &mut stack))
    });
}
