//! E18: copy-on-write state sharing on the wide-program stress rows.
//!
//! Measures end-to-end analysis time and the per-phase engine breakdown
//! on `exchange_with_root_wide(p)` — the workload whose successor states
//! used to deep-copy an O(p²) constraint matrix per engine step — plus a
//! small control program that must stay in the noise. Also reports how
//! many matrix copies the CoW layer actually materialized.
//!
//! The wide rows are additionally re-measured under the frontier-
//! parallel round executor (`par_jobs` 2 and 4) with the speedup over
//! the sequential row — flat times are expected on single-core runners,
//! where the rows still pin that parallel dispatch adds no blow-up.
//!
//! Writes a JSON summary to `$BENCH_STATE_SHARING_JSON` when that
//! variable is set (the `scripts/verify.sh` artifact
//! `BENCH_state_sharing.json`); always prints the same rows as a table.

use std::fmt::Write as _;
use std::time::Duration;

use mpl_bench::{profiled_run_par, ProfiledRun};
use mpl_core::Client;
use mpl_domains::stats;
use mpl_lang::corpus;

/// Best-of-N wall-clock measurement of one corpus program, with the
/// matrix-copy delta of the fastest run's pass.
fn measure(prog: &corpus::CorpusProgram, runs: u32, par: usize) -> (ProfiledRun, u64) {
    let mut best: Option<(ProfiledRun, u64)> = None;
    for _ in 0..runs {
        let before = stats::matrix_copies();
        let run = profiled_run_par(prog, Client::Simple, par);
        let copies = stats::matrix_copies() - before;
        let better = best
            .as_ref()
            .is_none_or(|(b, _)| run.profile.total < b.profile.total);
        if better {
            best = Some((run, copies));
        }
    }
    best.expect("at least one run")
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let programs = [
        ("fig2_exchange", corpus::fig2_exchange(), 20),
        ("exchange_with_root", corpus::exchange_with_root(), 20),
        ("exchange_wide_24", corpus::exchange_with_root_wide(24), 5),
        ("exchange_wide_48", corpus::exchange_with_root_wide(48), 3),
        ("exchange_wide_96", corpus::exchange_with_root_wide(96), 2),
    ];

    println!("== state_sharing (E18) ==");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>12} {:>8}",
        "program",
        "total",
        "transfer",
        "match",
        "join/widen",
        "admission",
        "stored",
        "~bytes",
        "copies"
    );

    let mut rows = String::from("[");
    for (i, (label, prog, runs)) in programs.iter().enumerate() {
        let (run, copies) = measure(prog, *runs, 1);
        let p = &run.profile;
        println!(
            "{:<22} {:>10.2?} {:>10.2?} {:>10.2?} {:>10.2?} {:>10.2?} {:>8} {:>12} {:>8}",
            label,
            p.total,
            p.transfer,
            p.matching,
            p.join_widen,
            p.admission,
            p.stored.locations,
            p.stored.approx_bytes,
            copies,
        );
        if i > 0 {
            rows.push(',');
        }
        let _ = write!(
            rows,
            "{{\"program\":\"{label}\",\"total_ms\":{:.3},\"transfer_ms\":{:.3},\
             \"match_ms\":{:.3},\"join_widen_ms\":{:.3},\"admission_ms\":{:.3},\
             \"stored_locations\":{},\"stored_approx_bytes\":{},\"matrix_copies\":{}}}",
            ms(p.total),
            ms(p.transfer),
            ms(p.matching),
            ms(p.join_widen),
            ms(p.admission),
            p.stored.locations,
            p.stored.approx_bytes,
            copies,
        );
    }
    rows.push(']');

    // Frontier-parallel scaling on the wide rows: par_jobs 1/2/4, with
    // the speedup of each parallel row over its own sequential baseline.
    println!();
    println!("== frontier-parallel rounds (E21) ==");
    println!(
        "{:<22} {:>4} {:>10} {:>10} {:>10} {:>8}",
        "program", "par", "total", "rnd-wait", "rnd-merge", "speedup"
    );
    let wide = [
        ("exchange_wide_24", corpus::exchange_with_root_wide(24), 3),
        ("exchange_wide_48", corpus::exchange_with_root_wide(48), 2),
        ("exchange_wide_96", corpus::exchange_with_root_wide(96), 2),
    ];
    let mut par_rows = String::from("[");
    let mut first = true;
    for (label, prog, runs) in &wide {
        let mut base_ms = 0.0;
        for par in [1usize, 2, 4] {
            let (run, _) = measure(prog, *runs, par);
            let p = &run.profile;
            let total_ms = ms(p.total);
            if par == 1 {
                base_ms = total_ms;
            }
            let speedup = base_ms / total_ms.max(1e-9);
            println!(
                "{:<22} {:>4} {:>10.2?} {:>10.2?} {:>10.2?} {:>7.2}x",
                label, par, p.total, p.round_wait, p.round_merge, speedup
            );
            if !first {
                par_rows.push(',');
            }
            first = false;
            let _ = write!(
                par_rows,
                "{{\"program\":\"{label}\",\"par_jobs\":{par},\"total_ms\":{total_ms:.3},\
                 \"round_wait_ms\":{:.3},\"round_merge_ms\":{:.3},\"speedup\":{speedup:.3}}}",
                ms(p.round_wait),
                ms(p.round_merge),
            );
        }
    }
    par_rows.push(']');

    if let Ok(path) = std::env::var("BENCH_STATE_SHARING_JSON") {
        let json = format!(
            "{{\"bench\":\"state_sharing\",\"nproc\":{},\"rows\":{rows},\"par_rows\":{par_rows}}}\n",
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        );
        std::fs::write(&path, json).expect("write BENCH_STATE_SHARING_JSON");
        println!("wrote {path}");
    }
}
