//! E18: copy-on-write state sharing on the wide-program stress rows.
//!
//! Measures end-to-end analysis time and the per-phase engine breakdown
//! on `exchange_with_root_wide(p)` — the workload whose successor states
//! used to deep-copy an O(p²) constraint matrix per engine step — plus a
//! small control program that must stay in the noise. Also reports how
//! many matrix copies the CoW layer actually materialized.
//!
//! Writes a JSON summary to `$BENCH_STATE_SHARING_JSON` when that
//! variable is set (the `scripts/verify.sh` artifact
//! `BENCH_state_sharing.json`); always prints the same rows as a table.

use std::fmt::Write as _;
use std::time::Duration;

use mpl_bench::{profiled_run, ProfiledRun};
use mpl_core::Client;
use mpl_domains::stats;
use mpl_lang::corpus;

/// Best-of-N wall-clock measurement of one corpus program, with the
/// matrix-copy delta of the fastest run's pass.
fn measure(prog: &corpus::CorpusProgram, runs: u32) -> (ProfiledRun, u64) {
    let mut best: Option<(ProfiledRun, u64)> = None;
    for _ in 0..runs {
        let before = stats::matrix_copies();
        let run = profiled_run(prog, Client::Simple);
        let copies = stats::matrix_copies() - before;
        let better = best
            .as_ref()
            .is_none_or(|(b, _)| run.profile.total < b.profile.total);
        if better {
            best = Some((run, copies));
        }
    }
    best.expect("at least one run")
}

fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn main() {
    let programs = [
        ("fig2_exchange", corpus::fig2_exchange(), 20),
        ("exchange_with_root", corpus::exchange_with_root(), 20),
        ("exchange_wide_24", corpus::exchange_with_root_wide(24), 5),
        ("exchange_wide_48", corpus::exchange_with_root_wide(48), 3),
        ("exchange_wide_96", corpus::exchange_with_root_wide(96), 2),
    ];

    println!("== state_sharing (E18) ==");
    println!(
        "{:<22} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8} {:>12} {:>8}",
        "program",
        "total",
        "transfer",
        "match",
        "join/widen",
        "admission",
        "stored",
        "~bytes",
        "copies"
    );

    let mut rows = String::from("[");
    for (i, (label, prog, runs)) in programs.iter().enumerate() {
        let (run, copies) = measure(prog, *runs);
        let p = &run.profile;
        println!(
            "{:<22} {:>10.2?} {:>10.2?} {:>10.2?} {:>10.2?} {:>10.2?} {:>8} {:>12} {:>8}",
            label,
            p.total,
            p.transfer,
            p.matching,
            p.join_widen,
            p.admission,
            p.stored.locations,
            p.stored.approx_bytes,
            copies,
        );
        if i > 0 {
            rows.push(',');
        }
        let _ = write!(
            rows,
            "{{\"program\":\"{label}\",\"total_ms\":{:.3},\"transfer_ms\":{:.3},\
             \"match_ms\":{:.3},\"join_widen_ms\":{:.3},\"admission_ms\":{:.3},\
             \"stored_locations\":{},\"stored_approx_bytes\":{},\"matrix_copies\":{}}}",
            ms(p.total),
            ms(p.transfer),
            ms(p.matching),
            ms(p.join_widen),
            ms(p.admission),
            p.stored.locations,
            p.stored.approx_bytes,
            copies,
        );
    }
    rows.push(']');

    if let Ok(path) = std::env::var("BENCH_STATE_SHARING_JSON") {
        let json = format!("{{\"bench\":\"state_sharing\",\"rows\":{rows}}}\n");
        std::fs::write(&path, json).expect("write BENCH_STATE_SHARING_JSON");
        println!("wrote {path}");
    }
}
