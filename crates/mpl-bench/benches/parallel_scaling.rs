//! E15: parallel batch-analysis scaling — wall time for the full corpus
//! batch as the `mpl-runtime` worker count grows (jobs = 1, 2, 4, 8).
//!
//! On a multi-core host the batch should approach linear speedup (the
//! jobs are independent); on a single-core container the times stay flat
//! and only measure the (small) pool overhead. Either way the *results*
//! are identical at every worker count — asserted here after measuring.

use mpl_bench::harness::Group;
use mpl_core::{AnalysisConfig, BatchAnalyzer, BatchJob, Client};
use mpl_lang::corpus;
use std::hint::black_box;

/// The corpus plus a few scaled workloads so the batch has enough work
/// to amortize thread startup.
fn jobs() -> Vec<BatchJob> {
    let mut out = Vec::new();
    for prog in corpus::all() {
        out.push(BatchJob::new(
            prog.name,
            prog.program,
            AnalysisConfig::default(),
        ));
    }
    for k in [8usize, 16, 24] {
        let prog = corpus::repeated_exchanges(k);
        let config = AnalysisConfig::builder()
            .client(Client::Simple)
            .build()
            .expect("valid config");
        out.push(BatchJob::new(
            format!("repeated_exchanges_{k}"),
            prog.program,
            config,
        ));
    }
    out
}

fn run_batch(workers: usize) -> usize {
    let mut batch = BatchAnalyzer::new().workers(workers);
    for job in jobs() {
        batch.push(job);
    }
    batch.run().summary.programs
}

fn main() {
    let group = Group::new("parallel_batch_scaling");
    for workers in [1usize, 2, 4, 8] {
        group.bench(&format!("corpus_jobs_{workers}"), || {
            black_box(run_batch(workers))
        });
    }
    drop(group);

    // Sanity: the batch is result-deterministic at every worker count.
    let render = |workers: usize| {
        let mut batch = BatchAnalyzer::new().workers(workers);
        for job in jobs() {
            batch.push(job);
        }
        batch
            .run()
            .records
            .iter()
            .map(|r| {
                let result = r.result.as_ref().expect("fault-free corpus completes");
                format!(
                    "{} {:?} {:?} {}",
                    r.name, result.verdict, result.matches, result.steps
                )
            })
            .collect::<Vec<_>>()
            .join("\n")
    };
    let seq = render(1);
    for workers in [2usize, 4, 8] {
        assert_eq!(
            seq,
            render(workers),
            "results diverged at {workers} workers"
        );
    }
    println!("\ndeterminism: corpus results identical for 1/2/4/8 workers");
}
