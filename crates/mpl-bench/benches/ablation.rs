//! E8: ablations for the §IX optimization roadmap.
//!
//! * incremental O(n²) closure vs full O(n³) re-closure after every new
//!   constraint (the unoptimized prototype behaviour);
//! * the richer cartesian (HSM) client vs the simple client on a pattern
//!   the simple client already handles — the paper's point (i): "the use
//!   of a client analysis that is much richer … than what is required
//!   for the job".

use mpl_bench::harness::Group;
use mpl_core::{analyze, AnalysisConfig, Client};
use mpl_domains::set_force_full_closure;
use mpl_lang::corpus;
use std::hint::black_box;

fn main() {
    let closure = Group::new("ablation_closure");
    for prog in [corpus::exchange_with_root(), corpus::fanout_broadcast()] {
        let config = AnalysisConfig::builder()
            .client(Client::Simple)
            .build()
            .expect("valid config");
        set_force_full_closure(false);
        closure.bench(&format!("{}_incremental", prog.name), || {
            black_box(analyze(&prog.program, &config))
        });
        set_force_full_closure(true);
        closure.bench(&format!("{}_full_reclose", prog.name), || {
            black_box(analyze(&prog.program, &config))
        });
        set_force_full_closure(false);
    }
    drop(closure);

    let client_group = Group::new("ablation_client");
    for prog in [
        corpus::exchange_with_root(),
        corpus::nearest_neighbor_shift(),
    ] {
        for client in [Client::Simple, Client::Cartesian] {
            let config = AnalysisConfig::builder()
                .client(client)
                .build()
                .expect("valid config");
            client_group.bench(&format!("{}_{:?}", prog.name, client), || {
                black_box(analyze(&prog.program, &config))
            });
        }
    }
}
