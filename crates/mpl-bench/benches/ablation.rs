//! E8: ablations for the §IX optimization roadmap.
//!
//! * incremental O(n²) closure vs full O(n³) re-closure after every new
//!   constraint (the unoptimized prototype behaviour);
//! * the richer cartesian (HSM) client vs the simple client on a pattern
//!   the simple client already handles — the paper's point (i): "the use
//!   of a client analysis that is much richer … than what is required
//!   for the job".

use criterion::{criterion_group, criterion_main, Criterion};
use mpl_core::{analyze, AnalysisConfig, Client};
use mpl_domains::set_force_full_closure;
use mpl_lang::corpus;
use std::hint::black_box;

fn bench_closure_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_closure");
    for prog in [corpus::exchange_with_root(), corpus::fanout_broadcast()] {
        let config = AnalysisConfig { client: Client::Simple, ..AnalysisConfig::default() };
        group.bench_function(format!("{}_incremental", prog.name), |b| {
            set_force_full_closure(false);
            b.iter(|| black_box(analyze(&prog.program, &config)));
        });
        group.bench_function(format!("{}_full_reclose", prog.name), |b| {
            set_force_full_closure(true);
            b.iter(|| black_box(analyze(&prog.program, &config)));
            set_force_full_closure(false);
        });
    }
    group.finish();
}

fn bench_client_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_client");
    for prog in [corpus::exchange_with_root(), corpus::nearest_neighbor_shift()] {
        for client in [Client::Simple, Client::Cartesian] {
            let config = AnalysisConfig { client, ..AnalysisConfig::default() };
            group.bench_function(format!("{}_{:?}", prog.name, client), |b| {
                b.iter(|| black_box(analyze(&prog.program, &config)));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_closure_ablation, bench_client_ablation);
criterion_main!(benches);
