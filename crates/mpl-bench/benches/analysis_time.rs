//! E6: end-to-end pCFG analysis time per paper workload (the quantity the
//! paper reports as 381 s for the fan-out broadcast on its prototype).

use mpl_bench::harness::Group;
use mpl_core::{analyze, AnalysisConfig, Client};
use mpl_lang::corpus::{self, GridDims};
use std::hint::black_box;

fn main() {
    let analysis = Group::new("analysis_time");
    let entries = vec![
        ("fig2_exchange", corpus::fig2_exchange(), Client::Simple),
        (
            "fanout_broadcast",
            corpus::fanout_broadcast(),
            Client::Simple,
        ),
        ("gather_to_root", corpus::gather_to_root(), Client::Simple),
        (
            "exchange_with_root",
            corpus::exchange_with_root(),
            Client::Simple,
        ),
        ("mdcask_full", corpus::mdcask_full(), Client::Simple),
        (
            "nearest_neighbor_shift",
            corpus::nearest_neighbor_shift(),
            Client::Simple,
        ),
        (
            "transpose_square_hsm",
            corpus::nas_cg_transpose_square(GridDims::Symbolic),
            Client::Cartesian,
        ),
        (
            "transpose_rect_hsm",
            corpus::nas_cg_transpose_rect(GridDims::Symbolic),
            Client::Cartesian,
        ),
    ];
    for (name, prog, client) in entries {
        let config = AnalysisConfig::builder()
            .client(client)
            .build()
            .expect("valid config");
        analysis.bench(name, || black_box(analyze(&prog.program, &config)));
    }
    drop(analysis);

    // Context for the static numbers: concrete simulation cost per np —
    // the runtime-only alternative the paper's introduction contrasts
    // against (it must be repeated per process count, the analysis not).
    use mpl_sim::Simulator;
    let sim = Group::new("simulation_baseline");
    let prog = corpus::exchange_with_root();
    for np in [8u64, 32, 128] {
        sim.bench(&format!("exchange_with_root_np{np}"), || {
            let out = Simulator::new(&prog.program, np).run().unwrap();
            black_box(out.topology.len())
        });
    }
    drop(sim);

    // Analysis cost as the number of communication phases grows: the
    // pCFG walk should scale roughly linearly in program size.
    let scaling = Group::new("program_scaling");
    for k in [1usize, 4, 16, 32] {
        let prog = corpus::repeated_exchanges(k);
        let config = AnalysisConfig::builder()
            .client(Client::Simple)
            .build()
            .expect("valid config");
        scaling.bench(&format!("exchanges_{k}"), || {
            black_box(analyze(&prog.program, &config))
        });
    }
}
