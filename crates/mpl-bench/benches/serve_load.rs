//! Serve load harness: replays the built-in corpus against an
//! in-process [`AnalysisService`] from several concurrent clients and
//! reports request latency percentiles plus the cache hit rate.
//!
//! The harness drives [`AnalysisService::handle_line`] directly — the
//! same entry point `mpl serve` forwards socket lines to — so it
//! measures the full daemon request path (JSON decode, admission,
//! cache, analysis, render) without socket jitter. Two sections run:
//!
//! * **replay** — `CLIENTS` threads each replay every corpus program
//!   `ROUNDS` times (staggered start offsets, so the cold round mixes
//!   programs across clients). Round one is mostly cold; later rounds
//!   are served from the fingerprint cache.
//! * **backpressure** — the admission gate is saturated by holding
//!   permits, then one more request is fired to confirm it receives a
//!   structured `rejected` response (never a hang).
//! * **quota** — a second service with a small token-bucket budget is
//!   hammered past its burst to confirm deterministic, structured
//!   `quota-exceeded` rejections with a retry hint.
//!
//! Writes a JSON summary to `$BENCH_SERVE_JSON` when that variable is
//! set (the `scripts/verify.sh` artifact `BENCH_serve.json`); always
//! prints the same numbers as a table.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mpl_core::{json_escape, AnalysisService, QuotaPolicy, ServiceConfig, PROTOCOL_VERSION};
use mpl_lang::corpus;

/// Concurrent client threads (acceptance floor is 4).
const CLIENTS: usize = 8;
/// Full corpus replays per client.
const ROUNDS: usize = 3;

/// Renders the wire request line for one corpus program.
fn request_line(prog: &corpus::CorpusProgram) -> String {
    format!(
        "{{\"op\":\"analyze\",\"name\":\"{}\",\"program\":\"{}\",\"min_np\":{}}}",
        json_escape(prog.name),
        json_escape(&prog.source),
        prog.min_procs.max(4)
    )
}

/// Nearest-rank percentile over an ascending latency list.
fn percentile(sorted: &[Duration], p: f64) -> Duration {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

fn main() {
    // Capacity above the client count: the replay section measures
    // latency, not rejection, so no request may bounce off the gate.
    let service = Arc::new(AnalysisService::new(ServiceConfig {
        max_in_flight: CLIENTS * 2,
        ..ServiceConfig::default()
    }));

    let requests: Arc<Vec<String>> = Arc::new(corpus::all().iter().map(request_line).collect());

    // -- replay section ------------------------------------------------
    let wall = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|client| {
            let service = Arc::clone(&service);
            let requests = Arc::clone(&requests);
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(ROUNDS * requests.len());
                for round in 0..ROUNDS {
                    for i in 0..requests.len() {
                        // Stagger the order per client so the cold
                        // round exercises the cache under contention.
                        let line = &requests[(i + client + round) % requests.len()];
                        let start = Instant::now();
                        let reply = service.handle_line(line);
                        latencies.push(start.elapsed());
                        let body = reply.line();
                        assert!(
                            body.contains("\"type\":\"program\""),
                            "replay request was not served: {body}"
                        );
                    }
                }
                latencies
            })
        })
        .collect();

    let mut latencies: Vec<Duration> = Vec::new();
    for handle in handles {
        latencies.extend(handle.join().expect("client thread panicked"));
    }
    let wall = wall.elapsed();
    latencies.sort_unstable();

    let total = latencies.len();
    let p50 = percentile(&latencies, 50.0);
    let p99 = percentile(&latencies, 99.0);
    let mean = latencies.iter().sum::<Duration>() / total as u32;
    let stats = service.cache_stats();
    let lookups = stats.hits + stats.misses;
    let hit_rate = if lookups == 0 {
        0.0
    } else {
        stats.hits as f64 / lookups as f64
    };

    // -- backpressure section ------------------------------------------
    // Drain the admission gate, then confirm the structured rejection.
    let mut permits = Vec::new();
    while let Some(permit) = service.gate().try_admit() {
        permits.push(permit);
    }
    let rejected = service.handle_line(&requests[0]);
    let rejected_reply = rejected.line();
    let rejected_structured =
        rejected_reply.starts_with(&format!("{{\"v\":{PROTOCOL_VERSION},\"type\":\"rejected\""));
    assert!(
        rejected_structured,
        "saturated gate must reject with a structured response: {rejected_reply}"
    );
    drop(permits);

    // -- quota section -------------------------------------------------
    // A tight token bucket: exactly `burst` requests are served before
    // the refill rate matters; the rest get structured quota rejections.
    const QUOTA_BURST: u64 = 4;
    const QUOTA_PROBES: u64 = 16;
    let quota_service = AnalysisService::new(ServiceConfig {
        quota: Some(QuotaPolicy {
            rate_per_sec: 1,
            burst: QUOTA_BURST,
        }),
        ..ServiceConfig::default()
    });
    let mut quota_served = 0u64;
    for _ in 0..QUOTA_PROBES {
        let reply = quota_service.handle_line(&requests[0]);
        let body = reply.line();
        if body.contains("\"type\":\"program\"") {
            quota_served += 1;
        } else {
            assert!(
                body.contains("\"code\":\"quota-exceeded\"")
                    && body.contains("\"retry_after_ms\":"),
                "quota rejection must be structured: {body}"
            );
        }
    }
    let quota_rejected = quota_service.quota_rejected();
    assert_eq!(quota_served, QUOTA_BURST, "burst is the whole budget");
    assert_eq!(quota_served + quota_rejected, QUOTA_PROBES);

    let coalesced = service.coalesced();

    println!("== serve_load ==");
    println!(
        "{:<10} {:>8} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8} {:>9}",
        "clients", "requests", "p50", "p99", "mean", "hits", "misses", "evicted", "hit-rate"
    );
    println!(
        "{:<10} {:>8} {:>10.1?} {:>10.1?} {:>10.1?} {:>8} {:>8} {:>8} {:>8.1}%",
        CLIENTS,
        total,
        p50,
        p99,
        mean,
        stats.hits,
        stats.misses,
        stats.evictions,
        hit_rate * 100.0,
    );
    println!(
        "wall {wall:.1?}; coalesced={coalesced}; gate rejected={} structured-rejection=ok",
        service.gate().rejected()
    );
    println!(
        "quota: served={quota_served}/{QUOTA_PROBES} rejected={quota_rejected} (burst {QUOTA_BURST})"
    );

    if let Ok(path) = std::env::var("BENCH_SERVE_JSON") {
        let json = format!(
            "{{\"bench\":\"serve_load\",\"clients\":{CLIENTS},\"rounds\":{ROUNDS},\
             \"requests\":{total},\"p50_us\":{:.1},\"p99_us\":{:.1},\"mean_us\":{:.1},\
             \"wall_ms\":{:.1},\"hits\":{},\"misses\":{},\"evictions\":{},\
             \"hit_rate\":{:.4},\"rejected\":{},\"rejected_structured\":{rejected_structured},\
             \"coalesced\":{coalesced},\"quota_served\":{quota_served},\
             \"quota_rejected\":{quota_rejected},\"quota_burst\":{QUOTA_BURST}}}\n",
            us(p50),
            us(p99),
            us(mean),
            wall.as_secs_f64() * 1e3,
            stats.hits,
            stats.misses,
            stats.evictions,
            hit_rate,
            service.gate().rejected(),
        );
        std::fs::write(&path, json).expect("write BENCH_SERVE_JSON");
        println!("wrote {path}");
    }
}
