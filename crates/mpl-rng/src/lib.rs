//! # mpl-rng — deterministic in-tree pseudo-random numbers
//!
//! A tiny seeded generator (SplitMix64, Steele et al., OOPSLA'14 — the
//! stream-splitting mixer used to seed xorshift-family generators) used
//! for simulator schedules, randomized property suites and bench input
//! generation. It exists so the workspace resolves and builds with **no
//! registry access**: the default feature set of every crate pulls zero
//! external dependencies (the `ext-deps` feature on downstream crates is
//! a reserved no-op hook; see the workspace README).
//!
//! The generator is *not* cryptographic and makes no cross-version
//! stability promise beyond "same seed, same sequence within one build".

/// A seeded SplitMix64 generator.
///
/// ```
/// use mpl_rng::Rng64;
/// let mut a = Rng64::seed_from_u64(7);
/// let mut b = Rng64::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Creates a generator from a seed (any value, including 0).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Rng64 {
        Rng64 { state: seed }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..len` (Lemire multiply-shift reduction).
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "Rng64::index on empty range");
        let r = u128::from(self.next_u64());
        ((r * len as u128) >> 64) as usize
    }

    /// A uniform value in the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "Rng64::i64_in empty range {lo}..{hi}");
        let span = hi.wrapping_sub(lo) as u64;
        let r = u128::from(self.next_u64());
        lo.wrapping_add(((r * u128::from(span)) >> 64) as i64)
    }

    /// A uniform value in the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "Rng64::u64_in empty range {lo}..{hi}");
        let r = u128::from(self.next_u64());
        lo + ((r * u128::from(hi - lo)) >> 64) as u64
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly chosen element of `xs`.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.index(xs.len())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng64::seed_from_u64(42);
        let mut b = Rng64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(43);
        assert_ne!(Rng64::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn index_stays_in_range_and_covers() {
        let mut rng = Rng64::seed_from_u64(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let i = rng.index(7);
            assert!(i < 7);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn i64_in_respects_bounds() {
        let mut rng = Rng64::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.i64_in(-5, 5);
            assert!((-5..5).contains(&v), "{v}");
        }
        // Negative-only and single-value-wide ranges.
        for _ in 0..100 {
            assert!((-9..-3).contains(&rng.i64_in(-9, -3)));
            assert_eq!(rng.i64_in(4, 5), 4);
        }
    }

    #[test]
    fn u64_in_respects_bounds() {
        let mut rng = Rng64::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.u64_in(2, 12);
            assert!((2..12).contains(&v), "{v}");
        }
    }

    #[test]
    fn pick_and_flip() {
        let mut rng = Rng64::seed_from_u64(4);
        let xs = ["a", "b", "c"];
        let mut heads = 0;
        for _ in 0..200 {
            assert!(xs.contains(rng.pick(&xs)));
            if rng.flip() {
                heads += 1;
            }
        }
        assert!((40..160).contains(&heads), "flip badly skewed: {heads}");
    }
}
