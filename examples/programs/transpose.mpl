// The NAS-CG transpose on a square process grid (paper Fig 6).
// The cartesian (HSM) client matches this for every grid size at once:
//   mpl analyze examples/programs/transpose.mpl
// To simulate, supply concrete dimensions:
//   mpl run examples/programs/transpose.mpl --np 9 --set nrows=3 --set ncols=3
assume np = nrows * ncols;
assume ncols = nrows;
x := id;
send x -> (id % nrows) * nrows + id / nrows;
recv y <- (id % nrows) * nrows + id / nrows;
