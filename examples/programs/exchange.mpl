// The mdcask exchange-with-root pattern (paper Fig 1 / Fig 5).
// Try:
//   mpl analyze examples/programs/exchange.mpl
//   mpl run     examples/programs/exchange.mpl --np 8
x := 7;
if id = 0 then
  for i = 1 to np - 1 do
    send x -> i;
    recv y <- i;
  end
else
  recv y <- 0;
  send x -> 0;
end
