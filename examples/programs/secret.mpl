// Information-flow demo: the secret goes only to rank 1.
//   mpl flow examples/programs/secret.mpl --source secret
secret := 41;
pub := 1;
p1 := 1;
p2 := 2;
if id = 0 then
  send secret -> p1;
  send pub -> p2;
else
  if id = 1 then
    recv a <- 0;
    print a;
  else
    if id = 2 then
      recv b <- 0;
      print b;
    end
  end
end
