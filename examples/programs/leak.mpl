// A message leak: rank 0 sends a message nobody ever receives.
//   mpl check examples/programs/leak.mpl   (exit code 1)
if id = 0 then
  x := 9;
  send x -> 1;
end
print id;
