// The 1-d nearest-neighbor shift (paper Fig 7/8).
//   mpl analyze examples/programs/shift.mpl
x := id;
if id = 0 then
  send x -> id + 1;
else
  if id = np - 1 then
    recv y <- id - 1;
  else
    recv y <- id - 1;
    send x -> id + 1;
  end
end
