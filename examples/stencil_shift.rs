//! Nearest-neighbor shifts (paper Fig 7/8, §VIII-C).
//!
//! Analyzes the 1-d open-ended shift symbolically — the engine discovers
//! the three-way split `{[0], [1..np-2], [np-1]}` and matches the
//! wavefront chain for *unbounded* `np` — and the row-major 2-d vertical
//! shift with concrete grid dimensions.
//!
//! Run with `cargo run -p mpl-examples --bin stencil_shift`.

use mpl_cfg::Cfg;
use mpl_core::{analyze_cfg, classify, AnalysisConfig, Client, StaticTopology};
use mpl_lang::corpus::{self, GridDims};
use mpl_sim::Simulator;

fn main() {
    for prog in [corpus::nearest_neighbor_shift(), corpus::left_shift()] {
        println!("=== {} ({}) ===", prog.name, prog.paper_ref);
        let cfg = Cfg::build(&prog.program);
        let result = analyze_cfg(
            &cfg,
            &AnalysisConfig::builder()
                .client(Client::Simple)
                .build()
                .expect("valid config"),
        );
        println!("verdict: {:?}", result.verdict);
        let topo = StaticTopology::from_result(&result);
        print!("{topo}");
        let pattern = classify(&result);
        println!("pattern: {pattern}");
        if let Some(hint) = pattern.collective_hint() {
            println!("optimization hint: {hint}");
        }

        for np in [4, 7, 11] {
            let outcome = Simulator::from_cfg(Cfg::build(&prog.program), np)
                .run()
                .expect("simulation succeeds");
            assert!(outcome.is_complete());
            assert!(
                topo.covers(&outcome.topology.site_pairs()),
                "static topology must cover np={np}"
            );
            println!(
                "np = {np:>2}: covered {} runtime messages ✓",
                outcome.topology.len()
            );
        }
        println!();
    }

    println!("=== 2-d vertical shift on a concrete 4x4 grid ===");
    let prog = corpus::stencil_2d_vertical(GridDims::Concrete { nrows: 4, ncols: 4 });
    let cfg = Cfg::build(&prog.program);
    let result = analyze_cfg(
        &cfg,
        &AnalysisConfig::builder()
            .client(Client::Simple)
            .build()
            .expect("valid config"),
    );
    println!("verdict: {:?}", result.verdict);
    for e in &result.events {
        println!("  match: {e}");
    }
    let outcome = Simulator::from_cfg(cfg, 16)
        .run()
        .expect("simulation succeeds");
    assert!(outcome.is_complete());
    println!(
        "simulator: {} messages delivered, no leaks: {}",
        outcome.topology.len(),
        outcome.leaks.is_empty()
    );
}
