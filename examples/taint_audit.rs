//! Information-flow audit (paper §I, fourth client): track where secret
//! data can travel through the matched communication topology, and
//! compare against the sequential MPI-CFG baseline (paper §II).
//!
//! Run with `cargo run -p mpl-examples --bin taint_audit`.

use mpl_cfg::Cfg;
use mpl_core::{analyze_cfg, info_flow, info_flow_with_pairs, mpi_cfg_topology, AnalysisConfig};
use mpl_lang::parse_program;

fn main() {
    // Rank 0 holds a secret and a public value; the secret goes only to
    // rank 1. Destination ranks are held in variables, so a sequential
    // analysis cannot tell the two sends apart.
    let source = "\
secret := 41;
pub := 1;
p1 := 1;
p2 := 2;
if id = 0 then
  send secret -> p1;
  send pub -> p2;
else
  if id = 1 then
    recv a <- 0;
    print a;
  else
    if id = 2 then
      recv b <- 0;
      print b;
    end
  end
end
";
    println!("=== program ===\n{source}");
    let program = parse_program(source).expect("valid MPL");
    let cfg = Cfg::build(&program);
    let result = analyze_cfg(&cfg, &AnalysisConfig::default());
    assert!(result.is_exact(), "{:?}", result.verdict);

    println!("=== pCFG-based taint (exact matches as flow edges) ===");
    let precise = info_flow(&cfg, &result);
    let tainted = precise.tainted_from(&["secret"]);
    println!(
        "tainted: {}",
        tainted.iter().cloned().collect::<Vec<_>>().join(", ")
    );
    let leaks = precise.leaking_prints(&["secret"]);
    for node in &leaks {
        println!(
            "possible leak at print {node} (line {})",
            cfg.span(*node).line
        );
    }
    assert_eq!(leaks.len(), 1, "only rank 1's print can leak");

    println!("\n=== MPI-CFG-based taint (all-pairs baseline) ===");
    let baseline = mpi_cfg_topology(&cfg);
    println!(
        "baseline keeps {} of {} send x recv pairs",
        baseline.pairs().len(),
        baseline.all_pairs()
    );
    let coarse = info_flow_with_pairs(&cfg, baseline.pairs());
    let coarse_leaks = coarse.leaking_prints(&["secret"]);
    for node in &coarse_leaks {
        println!(
            "possible leak at print {node} (line {})",
            cfg.span(*node).line
        );
    }
    assert!(coarse_leaks.len() > leaks.len());
    println!(
        "\ncommunication sensitivity removed {} false leak report(s) ✓",
        coarse_leaks.len() - leaks.len()
    );
}
