//! Quickstart: analyze a small message-passing program end to end.
//!
//! Parses the paper's Figure 2 exchange, runs the communication-sensitive
//! dataflow analysis, prints the discovered topology and constant facts,
//! and cross-checks everything against the concrete simulator.
//!
//! Run with `cargo run -p mpl-examples --bin quickstart`.

use mpl_cfg::Cfg;
use mpl_core::{analyze_cfg, classify, AnalysisConfig, StaticTopology};
use mpl_lang::parse_program;
use mpl_sim::Simulator;

fn main() {
    let source = "\
if id = 0 then
  x := 5;
  send x -> 1;
  recv y <- 1;
  print y;
else
  if id = 1 then
    recv y <- 0;
    send y -> 0;
    print y;
  end
end
";
    println!("=== program (paper Fig 2) ===\n{source}");

    let program = parse_program(source).expect("valid MPL");
    let cfg = Cfg::build(&program);

    // Static analysis: one run covers ALL process counts np >= 4.
    let result = analyze_cfg(&cfg, &AnalysisConfig::default());
    println!("=== static analysis ===");
    println!("verdict: {:?}", result.verdict);
    let topo = StaticTopology::from_result(&result);
    print!("{topo}");
    println!("pattern: {}", classify(&result));
    for p in &result.prints {
        println!(
            "print at {} for ranks {}: {}",
            p.node,
            p.range,
            p.value
                .map_or("unknown".to_owned(), |v| format!("constant {v}"))
        );
    }

    // Ground truth: run the same CFG on 8 concrete processes.
    let outcome = Simulator::from_cfg(cfg, 8)
        .run()
        .expect("simulation succeeds");
    println!("\n=== simulator (np = 8) ===");
    println!("completed: {}", outcome.is_complete());
    print!("{}", outcome.topology);
    println!(
        "rank 0 printed {:?}, rank 1 printed {:?}",
        outcome.prints[0], outcome.prints[1]
    );

    // The static site-level topology covers exactly the runtime one.
    assert!(topo.is_exact());
    assert_eq!(*topo.site_pairs(), outcome.topology.site_pairs());
    println!("\nstatic topology matches runtime topology exactly ✓");
}
