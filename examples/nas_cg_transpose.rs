//! The NAS-CG transpose (paper Fig 6 / §VIII): matching complex
//! cartesian-grid expressions with Hierarchical Sequence Maps.
//!
//! Replays the paper's §VIII derivations — converting the transpose
//! expression to an HSM, proving it is a surjection onto `[0..np-1]` and
//! that composing it with the receive expression yields the identity —
//! then runs the full pCFG analysis on both grid shapes, and shows that
//! the simple §VII client *cannot* handle this pattern (it returns ⊤).
//!
//! Run with `cargo run -p mpl-examples --bin nas_cg_transpose`.

use std::collections::BTreeMap;

use mpl_core::{analyze, AnalysisConfig, Client};
use mpl_hsm::{expr_to_hsm, AssumptionCtx, Hsm, SymPoly};
use mpl_lang::ast::StmtKind;
use mpl_lang::corpus::{self, GridDims};
use mpl_lang::parse_program;
use mpl_sim::{SimConfig, Simulator};

fn dest_of(src: &str) -> mpl_lang::ast::Expr {
    let p = parse_program(&format!("send 0 -> {src};")).unwrap();
    let StmtKind::Send { dest, .. } = &p.stmts[0].kind else {
        unreachable!()
    };
    dest.clone()
}

fn main() {
    // --- The §VIII-A/B derivation, square grid ---------------------------
    let mut ctx = AssumptionCtx::new();
    ctx.define("np", SymPoly::sym("nrows") * SymPoly::sym("ncols"));
    ctx.define("ncols", SymPoly::sym("nrows"));
    let mut vars = BTreeMap::new();
    vars.insert("nrows".to_owned(), SymPoly::sym("nrows"));
    vars.insert("ncols".to_owned(), SymPoly::sym("ncols"));

    let expr = dest_of("(id % nrows) * nrows + id / nrows");
    let np = ctx.normalize(&SymPoly::sym("np"));
    let all = Hsm::range(SymPoly::zero(), np.clone());
    let send = expr_to_hsm(&expr, &all, &vars, &ctx).expect("HSM conversion");
    println!("=== square grid (ncols = nrows), np = nrows² ===");
    println!("send expression: (id % nrows) * nrows + id / nrows");
    println!("as an HSM over [0..np-1]: {send}");
    println!(
        "surjection onto [0..np-1]:  {}",
        send.is_surjection_onto(&SymPoly::zero(), &np, &ctx)
    );
    let composed = expr_to_hsm(&expr, &send, &vars, &ctx).expect("composition");
    println!("recv ∘ send as an HSM:      {composed}");
    println!(
        "identity on [0..np-1]:      {}",
        composed.is_identity_on(&SymPoly::zero(), &np, &ctx)
    );

    // --- Full pCFG analysis, both grid shapes ----------------------------
    for (label, prog) in [
        (
            "square",
            corpus::nas_cg_transpose_square(GridDims::Symbolic),
        ),
        (
            "rectangular (ncols = 2*nrows)",
            corpus::nas_cg_transpose_rect(GridDims::Symbolic),
        ),
    ] {
        println!("\n=== pCFG analysis: {label} grid ===");
        let cart = analyze(&prog.program, &AnalysisConfig::default());
        println!("cartesian (§VIII) client verdict: {:?}", cart.verdict);
        for e in &cart.events {
            println!("  match: {e}");
        }
        let simple = analyze(
            &prog.program,
            &AnalysisConfig::builder()
                .client(Client::Simple)
                .build()
                .expect("valid config"),
        );
        println!("simple (§VII) client verdict:     {:?}", simple.verdict);
        assert!(cart.is_exact());
        assert!(
            !simple.is_exact(),
            "the simple client cannot match the transpose"
        );
    }

    // --- Concrete cross-check --------------------------------------------
    println!("\n=== simulator cross-check (3x3 grid, np = 9) ===");
    let prog = corpus::nas_cg_transpose_square(GridDims::Concrete { nrows: 3, ncols: 3 });
    let outcome = Simulator::new(&prog.program, 9)
        .with_config(SimConfig::default())
        .run()
        .expect("simulation succeeds");
    assert!(outcome.is_complete());
    for rank in 0..9 {
        let partner = outcome.stores[rank]["y"];
        println!("rank {rank} exchanged with rank {partner}");
        assert_eq!(partner, ((rank as i64) % 3) * 3 + (rank as i64) / 3);
    }
}
