//! Error detection (paper §I): message leaks and guaranteed deadlocks,
//! found statically and confirmed by the simulator.
//!
//! Run with `cargo run -p mpl-examples --bin bug_hunt`.

use mpl_cfg::Cfg;
use mpl_core::diagnostics::diagnose;
use mpl_core::{analyze_cfg, AnalysisConfig};
use mpl_lang::corpus;
use mpl_sim::{RunStatus, Simulator};

fn main() {
    // --- A message leak ---------------------------------------------------
    let prog = corpus::message_leak();
    println!("=== {} ===\n{}", prog.name, prog.source);
    let cfg = Cfg::build(&prog.program);
    let result = analyze_cfg(&cfg, &AnalysisConfig::default());
    println!("static diagnostics:");
    for d in diagnose(&cfg, &result) {
        println!("  {d}");
    }
    let outcome = Simulator::from_cfg(cfg, 4).run().expect("runs");
    println!(
        "simulator confirms: {} message(s) left undelivered at exit\n",
        outcome.leaks.len()
    );
    assert_eq!(result.leaks.len(), outcome.leaks.len());

    // --- A guaranteed deadlock --------------------------------------------
    let prog = corpus::deadlock_pair();
    println!("=== {} ===\n{}", prog.name, prog.source);
    let cfg = Cfg::build(&prog.program);
    let result = analyze_cfg(&cfg, &AnalysisConfig::default());
    println!("static diagnostics:");
    for d in diagnose(&cfg, &result) {
        println!("  {d}");
    }
    let outcome = Simulator::from_cfg(cfg, 2).run().expect("runs");
    let deadlocked = matches!(outcome.status, RunStatus::Deadlock { .. });
    println!("simulator confirms deadlock: {deadlocked}\n");
    assert!(deadlocked);

    // --- A clean program stays clean ---------------------------------------
    let prog = corpus::exchange_with_root();
    let cfg = Cfg::build(&prog.program);
    let result = analyze_cfg(&cfg, &AnalysisConfig::default());
    let diags = diagnose(&cfg, &result);
    println!("=== {} ===", prog.name);
    println!(
        "static diagnostics: {}",
        if diags.is_empty() { "none ✓" } else { "?" }
    );
    assert!(diags.is_empty());
}
