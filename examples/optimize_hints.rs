//! Corpus sweep: detected pattern and collective-replacement hint for
//! every corpus program — the use-case the paper's introduction motivates
//! (detect the pattern, then retarget it to native collectives).
//!
//! Run with `cargo run -p mpl-examples --bin optimize_hints`.

use mpl_cfg::Cfg;
use mpl_core::{analyze_cfg, classify, classify_pairs, AnalysisConfig, Verdict};
use mpl_lang::corpus;
use mpl_sim::Simulator;

fn main() {
    println!(
        "{:<26} {:<10} {:<20} {:<22} hint",
        "program", "verdict", "static pattern", "runtime pattern(np=8)"
    );
    println!("{}", "-".repeat(110));
    for prog in corpus::all() {
        let cfg = Cfg::build(&prog.program);
        let result = analyze_cfg(&cfg, &AnalysisConfig::default());
        let verdict = match &result.verdict {
            Verdict::Exact => "exact".to_owned(),
            Verdict::Deadlock { .. } => "deadlock".to_owned(),
            _ => "⊤".to_owned(),
        };
        let static_pattern = classify(&result);
        // Ground truth from one concrete run (buffered sends).
        let runtime = Simulator::from_cfg(cfg, 8)
            .run()
            .ok()
            .filter(|o| o.is_complete())
            .map(|o| classify_pairs(&o.topology.rank_pairs(), 8).to_string())
            .unwrap_or_else(|| "(no clean run)".to_owned());
        let hint = static_pattern.collective_hint().unwrap_or("-");
        println!(
            "{:<26} {:<10} {:<20} {:<22} {}",
            prog.name,
            verdict,
            static_pattern.to_string(),
            runtime,
            hint
        );
    }
}
