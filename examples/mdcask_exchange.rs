//! The mdcask exchange-with-root pattern (paper Fig 1 / Fig 5).
//!
//! Shows the engine's Fig 5 walk-through: the loop over `send x -> i;
//! recv y <- i` converges to the symbolic loop invariant
//! `{[0], [1..i-1], [i..np-1]}`, the exit edge proves `i = np`, and the
//! final topology is exchange-with-root — which the pattern classifier
//! suggests replacing with `MPI_Bcast + MPI_Gather`, the optimization the
//! paper's introduction motivates.
//!
//! Run with `cargo run -p mpl-examples --bin mdcask_exchange`.

use mpl_cfg::Cfg;
use mpl_core::{analyze_cfg, classify, AnalysisConfig, Client, StaticTopology};
use mpl_lang::corpus;
use mpl_sim::Simulator;

fn main() {
    let prog = corpus::exchange_with_root();
    println!("=== program ({}) ===\n{}", prog.paper_ref, prog.source);
    let cfg = Cfg::build(&prog.program);

    let config = AnalysisConfig::builder()
        .client(Client::Simple) // §VII suffices for this pattern
        .trace(true)
        .build()
        .expect("valid config");
    let result = analyze_cfg(&cfg, &config);

    println!("=== Fig 5-style engine trace (excerpt) ===");
    for line in result.trace.iter().take(24) {
        println!("{line}");
    }
    if result.trace.len() > 24 {
        println!("... ({} more steps to fixpoint)", result.trace.len() - 24);
    }

    println!("\n=== result ===");
    println!("verdict: {:?}", result.verdict);
    let topo = StaticTopology::from_result(&result);
    print!("{topo}");
    let pattern = classify(&result);
    println!("pattern: {pattern}");
    if let Some(hint) = pattern.collective_hint() {
        println!("optimization hint: {hint}");
    }

    // Validate against concrete executions for several process counts.
    println!("\n=== simulator cross-check ===");
    for np in [4, 5, 8, 13] {
        let outcome = Simulator::from_cfg(Cfg::build(&prog.program), np)
            .run()
            .expect("simulation succeeds");
        assert!(outcome.is_complete());
        let ok = topo.covers(&outcome.topology.site_pairs());
        println!(
            "np = {np:>2}: {} runtime messages, static topology covers them: {}",
            outcome.topology.len(),
            if ok { "yes" } else { "NO" }
        );
        assert!(ok, "static topology must cover the runtime one");
    }
}
