#!/usr/bin/env bash
# Offline tier-1 verification: formatting, lints, and the full test
# suite, with zero registry access (the default workspace has no
# external dependencies; see README "ext-deps").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test --workspace =="
cargo test --workspace --offline -q

echo "== analyze-corpus determinism (jobs=1 vs jobs=4) =="
# The batch runtime must produce byte-identical output for any worker
# count (wall times are only printed under --timing, which we omit).
cargo build -q -p mpl-cli --offline
MPL=target/debug/mpl
seq_out=$("$MPL" analyze-corpus --jobs 1)
par_out=$("$MPL" analyze-corpus --jobs 4)
diff <(printf '%s\n' "$seq_out") <(printf '%s\n' "$par_out") \
  || { echo "analyze-corpus output differs between jobs=1 and jobs=4"; exit 1; }
seq_json=$("$MPL" analyze-corpus --jobs 1 --json)
par_json=$("$MPL" analyze-corpus --jobs 4 --json)
diff <(printf '%s\n' "$seq_json") <(printf '%s\n' "$par_json") \
  || { echo "analyze-corpus --json output differs between jobs=1 and jobs=4"; exit 1; }

echo "verify: OK"
