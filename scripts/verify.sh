#!/usr/bin/env bash
# Offline tier-1 verification: formatting, lints, and the full test
# suite, with zero registry access (the default workspace has no
# external dependencies; see README "ext-deps").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test --workspace =="
cargo test --workspace --offline -q

echo "== analyze-corpus determinism (jobs=1 vs jobs=4) =="
# The batch runtime must produce byte-identical output for any worker
# count (wall times are only printed under --timing, which we omit).
cargo build -q -p mpl-cli --offline
MPL=target/debug/mpl
seq_out=$("$MPL" analyze-corpus --jobs 1)
par_out=$("$MPL" analyze-corpus --jobs 4)
diff <(printf '%s\n' "$seq_out") <(printf '%s\n' "$par_out") \
  || { echo "analyze-corpus output differs between jobs=1 and jobs=4"; exit 1; }
seq_json=$("$MPL" analyze-corpus --jobs 1 --json)
par_json=$("$MPL" analyze-corpus --jobs 4 --json)
diff <(printf '%s\n' "$seq_json") <(printf '%s\n' "$par_json") \
  || { echo "analyze-corpus --json output differs between jobs=1 and jobs=4"; exit 1; }

echo "== frontier-parallel determinism (--par 4 vs sequential) =="
# The two-tier round executor must be invisible in the output: the whole
# corpus report — verdicts, steps, matches, closure counters — is byte-
# identical whether rounds run inline or across 4 pool workers, and the
# priority schedule is likewise deterministic at any worker count.
par_seq=$("$MPL" analyze-corpus --json)
par_par=$("$MPL" analyze-corpus --json --par 4)
diff <(printf '%s\n' "$par_seq") <(printf '%s\n' "$par_par") \
  || { echo "analyze-corpus output differs between --par 1 and --par 4"; exit 1; }
pri_seq=$("$MPL" analyze-corpus --json --order priority)
pri_par=$("$MPL" analyze-corpus --json --order priority --par 4)
diff <(printf '%s\n' "$pri_seq") <(printf '%s\n' "$pri_par") \
  || { echo "analyze-corpus --order priority differs between --par 1 and --par 4"; exit 1; }

echo "== analyze-corpus golden JSON (byte-identical) =="
# The corpus report is a public, deterministic artifact: any refactor of
# the engine/scheduler/observer layering must reproduce it byte for
# byte. Regenerate tests/tests/golden_corpus.json only for an
# *intentional* behavior change.
diff <("$MPL" analyze-corpus --json) tests/tests/golden_corpus.json \
  || { echo "analyze-corpus --json diverged from tests/tests/golden_corpus.json"; exit 1; }

echo "== fault-injection smoke (panic + spin isolation) =="
# An 8-program corpus with one panicking and one spinning job: the fleet
# must complete, --keep-going must exit 0, and exactly those two jobs
# may end non-completed. Records must stay byte-identical across worker
# counts even with faults in the mix.
smoke_dir=$(mktemp -d)
trap 'rm -rf "$smoke_dir"' EXIT
good='if id = 0 then
  x := 5;
  send x -> 1;
else
  if id = 1 then
    recv y <- 0;
    print y;
  end
end'
for i in 0 1 2 3 4 5; do printf '%s\n' "$good" > "$smoke_dir/p$i.mpl"; done
printf '// mpl:fault=panic\n%s\n' "$good" > "$smoke_dir/x_panic.mpl"
printf '// mpl:fault=spin\n%s\n' "$good" > "$smoke_dir/y_spin.mpl"
smoke_out=$("$MPL" analyze-corpus --dir "$smoke_dir" --jobs 4 --timeout-ms 200 --keep-going --json) \
  || { echo "fault-injection run exited nonzero despite --keep-going"; exit 1; }
panicked=$(grep -c '"outcome":"panicked"' <<< "$smoke_out")
timed_out=$(grep -c '"outcome":"timed-out"' <<< "$smoke_out")
completed=$(grep -c '"outcome":"completed"' <<< "$smoke_out")
if [ "$panicked" != 1 ] || [ "$timed_out" != 1 ] || [ "$completed" != 6 ]; then
  echo "unexpected outcomes: completed=$completed panicked=$panicked timed_out=$timed_out"
  printf '%s\n' "$smoke_out"
  exit 1
fi
smoke_seq=$("$MPL" analyze-corpus --dir "$smoke_dir" --jobs 1 --timeout-ms 200 --keep-going --json)
diff <(printf '%s\n' "$smoke_seq") <(printf '%s\n' "$smoke_out") \
  || { echo "faulted corpus output differs between jobs=1 and jobs=4"; exit 1; }
# Without --keep-going the injected failures must be a nonzero exit.
if "$MPL" analyze-corpus --dir "$smoke_dir" --jobs 4 --timeout-ms 200 >/dev/null; then
  echo "expected nonzero exit without --keep-going"; exit 1
fi

echo "== per-phase profiler smoke (E18) =="
# The phase breakdown must account for the measured wall clock: on every
# program out of timer noise, |transfer+match+join/widen+admission -
# total| <= 10% of total. `--check` exits nonzero otherwise.
cargo build -q --release -p mpl-bench --offline
target/release/profile --check | tail -n 8
# Under --par the breakdown gains the round-wait/round-merge phases;
# the same coverage invariant must keep holding.
target/release/profile --check --par 4 | tail -n 4

echo "== serve daemon smoke (cache + byte-identity) =="
# Start a daemon, fire concurrent requests at it, and hold it to the
# protocol's core contract: every served response is byte-identical to
# what the one-shot `mpl analyze --json` prints, and a repeated request
# is answered from the result cache (>= 1 hit in `stats`).
sock="$smoke_dir/serve.sock"
"$MPL" serve --socket "$sock" --cache 32 > "$smoke_dir/serve.log" &
serve_pid=$!
for _ in $(seq 1 100); do [ -S "$sock" ] && break; sleep 0.05; done
[ -S "$sock" ] || { echo "serve daemon did not come up"; exit 1; }
prog="$smoke_dir/p0.mpl"
client_pids=()
for i in 1 2 3 4; do
  "$MPL" client --socket "$sock" --file "$prog" > "$smoke_dir/resp$i.json" &
  client_pids+=($!)
done
for pid in "${client_pids[@]}"; do
  wait "$pid" || { echo "concurrent serve client failed"; exit 1; }
done
# A fifth, sequential request: with the cache warm this must be a hit.
"$MPL" client --socket "$sock" --file "$prog" > "$smoke_dir/resp5.json"
oneshot=$("$MPL" analyze "$prog" --json)
for i in 1 2 3 4 5; do
  diff <(printf '%s\n' "$oneshot") "$smoke_dir/resp$i.json" \
    || { echo "served response $i diverged from mpl analyze --json"; exit 1; }
done
stats=$("$MPL" client --socket "$sock" --op stats)
hits=$(grep -o '"hits":[0-9]*' <<< "$stats" | grep -o '[0-9]*')
[ "$hits" -ge 1 ] || { echo "expected >= 1 cache hit, got: $stats"; exit 1; }
"$MPL" client --socket "$sock" --op shutdown >/dev/null
wait "$serve_pid" || { echo "serve daemon exited nonzero"; exit 1; }
grep -q '"type":"shutdown-summary"' "$smoke_dir/serve.log" \
  || { echo "missing shutdown summary"; cat "$smoke_dir/serve.log"; exit 1; }

echo "== serve crash-recovery smoke (kill -9 + warm restart) =="
# A daemon with a persistent cache journal is killed with SIGKILL while
# clients are mid-flight; a restart on the same --cache-dir must replay
# the journal and serve the settled requests as warm, byte-identical
# hits. Finishes with a graceful drain shutdown.
chaos_dir="$smoke_dir/chaos-cache"
chaos_sock="$smoke_dir/chaos.sock"
for i in 1 2 3; do printf 'x := %s;\nprint x;\n' "$i" > "$smoke_dir/chaos$i.mpl"; done
"$MPL" serve --socket "$chaos_sock" --cache-dir "$chaos_dir" > "$smoke_dir/chaos1.log" &
chaos_pid=$!
for _ in $(seq 1 100); do [ -S "$chaos_sock" ] && break; sleep 0.05; done
[ -S "$chaos_sock" ] || { echo "chaos daemon did not come up"; exit 1; }
# Settle three distinct programs so their journal records are durable.
for i in 1 2 3; do
  "$MPL" client --socket "$chaos_sock" --file "$smoke_dir/chaos$i.mpl" > "$smoke_dir/chaos-cold$i.json"
done
# Racing load at kill time: these clients may fail, and that is fine.
for i in 1 2 3 4; do
  "$MPL" client --socket "$chaos_sock" --file "$smoke_dir/chaos1.mpl" >/dev/null 2>&1 &
done
kill -9 "$chaos_pid"
wait "$chaos_pid" 2>/dev/null || true
wait || true
rm -f "$chaos_sock"
"$MPL" serve --socket "$chaos_sock" --cache-dir "$chaos_dir" > "$smoke_dir/chaos2.log" &
chaos_pid=$!
for _ in $(seq 1 100); do [ -S "$chaos_sock" ] && break; sleep 0.05; done
[ -S "$chaos_sock" ] || { echo "chaos daemon did not restart"; exit 1; }
for i in 1 2 3; do
  "$MPL" client --socket "$chaos_sock" --file "$smoke_dir/chaos$i.mpl" > "$smoke_dir/chaos-warm$i.json"
  diff "$smoke_dir/chaos-cold$i.json" "$smoke_dir/chaos-warm$i.json" \
    || { echo "warm response $i diverged from its pre-crash bytes"; exit 1; }
done
chaos_oneshot=$("$MPL" analyze "$smoke_dir/chaos1.mpl" --json)
diff <(printf '%s\n' "$chaos_oneshot") "$smoke_dir/chaos-warm1.json" \
  || { echo "journal-replayed response diverged from mpl analyze --json"; exit 1; }
chaos_stats=$("$MPL" client --socket "$chaos_sock" --op stats)
replayed=$(grep -o '"replayed":[0-9]*' <<< "$chaos_stats" | grep -o '[0-9]*')
warm_hits=$(grep -o '"hits":[0-9]*' <<< "$chaos_stats" | grep -o '[0-9]*')
[ "$replayed" -ge 3 ] || { echo "expected >= 3 replayed journal entries: $chaos_stats"; exit 1; }
[ "$warm_hits" -ge 3 ] || { echo "expected >= 3 warm hits after restart: $chaos_stats"; exit 1; }
"$MPL" client --socket "$chaos_sock" --op shutdown --mode drain >/dev/null
wait "$chaos_pid" || { echo "chaos daemon exited nonzero after drain"; exit 1; }
grep -q '"type":"drain"' "$smoke_dir/chaos2.log" \
  || { echo "missing drain record"; cat "$smoke_dir/chaos2.log"; exit 1; }
grep -q '"type":"shutdown-summary"' "$smoke_dir/chaos2.log" \
  || { echo "missing shutdown summary"; cat "$smoke_dir/chaos2.log"; exit 1; }

echo "== serve load bench artifact =="
# Replays the corpus against the in-process service from 8 concurrent
# clients; emits BENCH_serve.json (p50/p99 latency, cache hit rate,
# structured-rejection check). Numbers are machine-specific; only the
# file's presence and shape are verified here.
BENCH_SERVE_JSON="$PWD/BENCH_serve.json" \
  cargo bench -q -p mpl-bench --bench serve_load --offline >/dev/null
grep -q '"bench":"serve_load"' BENCH_serve.json \
  || { echo "BENCH_serve.json missing or malformed"; exit 1; }
grep -q '"rejected_structured":true' BENCH_serve.json \
  || { echo "BENCH_serve.json missing structured-rejection check"; exit 1; }
grep -q '"coalesced":' BENCH_serve.json \
  || { echo "BENCH_serve.json missing coalesced counter"; exit 1; }
grep -q '"quota_rejected":' BENCH_serve.json \
  || { echo "BENCH_serve.json missing quota counters"; exit 1; }

echo "== state-sharing bench artifact (E18) =="
# Emits BENCH_state_sharing.json (per-program totals, phase splits,
# stored-state footprint and CoW matrix-copy counts) for before/after
# comparisons; the numbers are wall-clock and machine-specific, only the
# file's presence and shape are verified here.
BENCH_STATE_SHARING_JSON="$PWD/BENCH_state_sharing.json" \
  cargo bench -q -p mpl-bench --bench state_sharing --offline >/dev/null
grep -q '"bench":"state_sharing"' BENCH_state_sharing.json \
  || { echo "BENCH_state_sharing.json missing or malformed"; exit 1; }
grep -q '"par_jobs":4' BENCH_state_sharing.json \
  || { echo "BENCH_state_sharing.json missing par_jobs scaling rows"; exit 1; }

echo "verify: OK"
