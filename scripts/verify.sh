#!/usr/bin/env bash
# Offline tier-1 verification: formatting, lints, and the full test
# suite, with zero registry access (the default workspace has no
# external dependencies; see README "ext-deps").
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "== cargo clippy -D warnings =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo test --workspace =="
cargo test --workspace --offline -q

echo "verify: OK"
