//! Integration tests live in `tests/`; this library is empty.
