//! Observer-layer equivalence suite: attaching observers must never
//! change what the engine computes.
//!
//! Runs the full corpus under both clients three ways — no observer
//! (plain `analyze_cfg`), a `TraceObserver`, and a stacked
//! `TraceObserver` + `StatsObserver` — and asserts the analysis results
//! are identical apart from the `trace` field, that the collected trace
//! matches the legacy `config.trace` output line for line, and that the
//! stats counters agree with the result they were collected from.

use mpl_cfg::Cfg;
use mpl_core::observer::{ObserverStack, StatsObserver, TraceObserver};
use mpl_core::{analyze_cfg, analyze_cfg_with, AnalysisConfig, AnalysisResult, Client};
use mpl_lang::corpus;

/// Strips the trace and wall-clock-bearing closure stats so results
/// from separate runs compare on semantics alone.
fn sans_trace(mut r: AnalysisResult) -> AnalysisResult {
    r.trace = Vec::new();
    r.closure_stats = Default::default();
    r
}

#[test]
fn observers_do_not_perturb_any_corpus_verdict() {
    for prog in corpus::all() {
        let cfg = Cfg::build(&prog.program);
        for client in [Client::Simple, Client::Cartesian] {
            let config = AnalysisConfig::builder()
                .client(client)
                .build()
                .expect("valid config");
            let plain = analyze_cfg(&cfg, &config);

            let mut tracer = TraceObserver::new();
            let traced = analyze_cfg_with(&cfg, &config, &mut tracer);
            assert_eq!(
                sans_trace(plain.clone()),
                sans_trace(traced),
                "TraceObserver changed the result of {} under {client:?}",
                prog.name
            );

            let mut tracer2 = TraceObserver::new();
            let mut stats = StatsObserver::new();
            let stacked = {
                let mut stack = ObserverStack::new();
                stack.push(&mut tracer2);
                stack.push(&mut stats);
                analyze_cfg_with(&cfg, &config, &mut stack)
            };
            assert_eq!(
                sans_trace(plain.clone()),
                sans_trace(stacked.clone()),
                "stacked observers changed the result of {} under {client:?}",
                prog.name
            );
            assert_eq!(tracer.lines(), tracer2.lines(), "{}", prog.name);
            assert_eq!(stats.stats().steps, stacked.steps, "{}", prog.name);

            // The trace collected through the observer is the same text
            // the legacy `config.trace` path produces.
            let legacy_config = AnalysisConfig::builder()
                .client(client)
                .trace(true)
                .build()
                .expect("valid config");
            let legacy = analyze_cfg(&cfg, &legacy_config);
            assert_eq!(
                legacy.trace,
                tracer.lines(),
                "trace text diverged on {} under {client:?}",
                prog.name
            );
            assert_eq!(sans_trace(legacy), sans_trace(plain), "{}", prog.name);
        }
    }
}
