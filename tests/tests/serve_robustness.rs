//! Robustness integration tests for the analysis service: single-flight
//! coalescing under real thread storms, deterministic batch coalescing,
//! quota rejection behaviour, and warm-restart byte-identity through the
//! persistent cache journal.

use std::path::PathBuf;
use std::sync::atomic::Ordering as AtomicOrdering;
use std::sync::{Arc, Barrier};

use mpl_core::{json_escape, AnalysisRequest, AnalysisService, QuotaPolicy, Reply, ServiceConfig};
use mpl_lang::corpus;

fn scratch_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "mpl-robust-{label}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn analyze_line(source: &str) -> String {
    format!(
        "{{\"op\":\"analyze\",\"client\":\"simple\",\"program\":\"{}\"}}",
        json_escape(source)
    )
}

#[test]
fn single_flight_storm_computes_once_per_distinct_request() {
    // A storm of threads, each hammering one of two distinct programs:
    // however the scheduler interleaves them, each program is computed
    // exactly once — every other response is a cache hit or a coalesced
    // share of the in-flight computation.
    const THREADS: usize = 8;
    const ROUNDS: usize = 5;
    let svc = Arc::new(AnalysisService::new(ServiceConfig {
        max_in_flight: THREADS,
        ..ServiceConfig::default()
    }));
    let lines: Arc<Vec<String>> = Arc::new(vec![
        analyze_line(&corpus::fig2_exchange().source),
        analyze_line(&corpus::all()[1].source),
    ]);
    let start = Arc::new(Barrier::new(THREADS));
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            let svc = Arc::clone(&svc);
            let lines = Arc::clone(&lines);
            let start = Arc::clone(&start);
            std::thread::spawn(move || {
                start.wait();
                let mut replies = Vec::new();
                for round in 0..ROUNDS {
                    let line = &lines[(t + round) % lines.len()];
                    let reply = svc.handle_line(line).line().to_owned();
                    assert!(reply.contains("\"type\":\"program\""), "{reply}");
                    replies.push(((t + round) % lines.len(), reply));
                }
                replies
            })
        })
        .collect();
    let mut per_program: Vec<Vec<String>> = vec![Vec::new(), Vec::new()];
    for worker in workers {
        for (program, reply) in worker.join().expect("worker") {
            per_program[program].push(reply);
        }
    }
    for replies in &per_program {
        assert!(replies.windows(2).all(|w| w[0] == w[1]), "byte-identical");
    }
    let stats = svc.cache_stats();
    let total = (THREADS * ROUNDS) as u64;
    assert_eq!(stats.entries, 2, "one cache entry per distinct program");
    assert_eq!(
        stats.hits + svc.coalesced(),
        total - 2,
        "all but the two leader computations were shared: hits={} coalesced={}",
        stats.hits,
        svc.coalesced()
    );
}

#[test]
fn batch_coalescing_is_deterministic_for_any_worker_count() {
    let sources: Vec<String> = corpus::all()
        .iter()
        .take(3)
        .map(|p| p.source.clone())
        .collect();
    // 9 lines: each program three times.
    let lines: Vec<String> = (0..9).map(|i| analyze_line(&sources[i % 3])).collect();
    let mut baseline: Option<(Vec<String>, u64)> = None;
    for jobs in [1usize, 2, 4, 8] {
        let svc = AnalysisService::new(ServiceConfig::default());
        let bodies = svc.handle_batch(&lines, jobs);
        let stats = svc.cache_stats();
        assert_eq!(svc.coalesced(), 6, "jobs={jobs}: 2 duplicates × 3 programs");
        assert_eq!((stats.hits, stats.misses), (0, 9), "jobs={jobs}");
        assert_eq!(stats.entries, 3, "jobs={jobs}");
        match &baseline {
            None => baseline = Some((bodies, svc.coalesced())),
            Some((expected, coalesced)) => {
                assert_eq!(&bodies, expected, "jobs={jobs}: bytes differ");
                assert_eq!(svc.coalesced(), *coalesced, "jobs={jobs}");
            }
        }
    }
}

#[test]
fn quota_storm_rejections_are_bounded_and_structured() {
    // 4 threads × 8 requests against a burst of 3 and a negligible
    // refill rate: exactly 3 requests are served, everything else gets
    // a structured quota rejection with a retry hint — and nothing
    // hangs or panics.
    const THREADS: usize = 4;
    const PER_THREAD: usize = 8;
    let svc = Arc::new(AnalysisService::new(ServiceConfig {
        quota: Some(QuotaPolicy {
            rate_per_sec: 1,
            burst: 3,
        }),
        ..ServiceConfig::default()
    }));
    let line = Arc::new(analyze_line(&corpus::fig2_exchange().source));
    let start = Arc::new(Barrier::new(THREADS));
    let served = Arc::new(std::sync::atomic::AtomicU64::new(0));
    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let svc = Arc::clone(&svc);
            let line = Arc::clone(&line);
            let start = Arc::clone(&start);
            let served = Arc::clone(&served);
            std::thread::spawn(move || {
                start.wait();
                for _ in 0..PER_THREAD {
                    let reply = svc.handle_line(&line).line().to_owned();
                    if reply.contains("\"type\":\"program\"") {
                        served.fetch_add(1, AtomicOrdering::Relaxed);
                    } else {
                        assert!(reply.contains("\"code\":\"quota-exceeded\""), "{reply}");
                        assert!(reply.contains("\"retry_after_ms\":"), "{reply}");
                    }
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("worker");
    }
    // The storm finishes in far less than the one second a refill
    // takes, so the burst is the whole budget.
    assert_eq!(served.load(AtomicOrdering::Relaxed), 3);
    assert_eq!(
        svc.quota_rejected(),
        (THREADS * PER_THREAD) as u64 - 3,
        "every non-served request was a quota rejection"
    );
}

#[test]
fn warm_restart_serves_byte_identical_responses_from_the_journal() {
    let dir = scratch_dir("warm-restart");
    let programs: Vec<String> = corpus::all()
        .iter()
        .take(4)
        .map(|p| analyze_line(&p.source))
        .collect();
    let config = || ServiceConfig {
        cache_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    };
    // First life: compute and persist.
    let cold: Vec<String> = {
        let svc = AnalysisService::new(config());
        assert_eq!(svc.replayed(), 0);
        programs
            .iter()
            .map(|line| svc.handle_line(line).line().to_owned())
            .collect()
    };
    // Second life: replay, then serve the same requests as warm hits.
    let svc = AnalysisService::new(config());
    assert_eq!(svc.replayed(), 4, "all four entries recovered");
    let warm: Vec<String> = programs
        .iter()
        .map(|line| svc.handle_line(line).line().to_owned())
        .collect();
    assert_eq!(cold, warm, "restart must not change a single byte");
    let stats = svc.cache_stats();
    assert_eq!((stats.hits, stats.misses), (4, 0), "all served from replay");
    // And the replayed bytes match what the request API renders today.
    let direct = AnalysisRequest::builder()
        .source(corpus::fig2_exchange().source)
        .client_tag("simple")
        .build()
        .expect("request")
        .execute()
        .json_line(false);
    assert_eq!(warm[0], direct);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn compaction_preserves_cache_contents_across_restart() {
    let dir = scratch_dir("compaction");
    let programs: Vec<String> = corpus::all()
        .iter()
        .take(5)
        .map(|p| analyze_line(&p.source))
        .collect();
    {
        // compact_every=2 forces two compactions during five inserts.
        let svc = AnalysisService::new(ServiceConfig {
            cache_dir: Some(dir.clone()),
            compact_every: 2,
            ..ServiceConfig::default()
        });
        for line in &programs {
            let reply = svc.handle_line(line);
            assert!(reply.line().contains("\"type\":\"program\""));
        }
        let stats = svc.handle_line("{\"op\":\"stats\"}").line().to_owned();
        assert!(stats.contains("\"compactions\":2"), "{stats}");
    }
    let svc = AnalysisService::new(ServiceConfig {
        cache_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    assert_eq!(svc.replayed(), 5, "compaction lost nothing");
    for line in &programs {
        assert!(
            matches!(svc.handle_line(line), Reply::Line(body) if body.contains("\"type\":\"program\""))
        );
    }
    assert_eq!(svc.cache_stats().hits, 5);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn journal_capacity_overflow_keeps_newest_entries_on_restart() {
    let dir = scratch_dir("overflow");
    let programs: Vec<String> = corpus::all()
        .iter()
        .take(5)
        .map(|p| analyze_line(&p.source))
        .collect();
    {
        let svc = AnalysisService::new(ServiceConfig {
            cache_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        });
        for line in &programs {
            let _ = svc.handle_line(line);
        }
    }
    // Restart with a smaller cache than the journal: replay keeps the
    // most recent two.
    let svc = AnalysisService::new(ServiceConfig {
        cache_dir: Some(dir.clone()),
        cache_capacity: 2,
        ..ServiceConfig::default()
    });
    assert_eq!(svc.replayed(), 5, "all journal entries were replayed");
    assert_eq!(svc.cache_stats().entries, 2);
    // The two most recently inserted programs are warm...
    for line in programs.iter().rev().take(2) {
        assert!(svc
            .handle_line(line)
            .line()
            .contains("\"type\":\"program\""));
    }
    assert_eq!(svc.cache_stats().hits, 2, "newest entries survived");
    // ...and the oldest is not.
    let _ = svc.handle_line(&programs[0]);
    assert!(svc.cache_stats().misses >= 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn anonymous_quota_buckets_are_keyed_by_peer_identity() {
    // A request with no `client_id` — or an *empty* one — must charge
    // the connection's peer identity, not one shared anonymous bucket:
    // two distinct peers each get their own burst, while repeat
    // requests from the same peer are throttled.
    let svc = AnalysisService::new(ServiceConfig {
        quota: Some(QuotaPolicy {
            rate_per_sec: 1,
            burst: 1,
        }),
        ..ServiceConfig::default()
    });
    let line = analyze_line(&corpus::fig2_exchange().source);
    let served = |reply: Reply| reply.line().contains("\"type\":\"program\"");

    // Absent client_id: each peer spends its own burst of 1.
    assert!(served(svc.handle_line_as(&line, "127.0.0.1:50001")));
    assert!(served(svc.handle_line_as(&line, "127.0.0.1:50002")));
    let again = svc.handle_line_as(&line, "127.0.0.1:50001");
    assert!(
        again.line().contains("\"code\":\"quota-exceeded\""),
        "{}",
        again.line()
    );
    assert_eq!(svc.quota_rejected(), 1);

    // Empty client_id is treated exactly like an absent one (it used
    // to select a single shared anonymous bucket).
    let empty_id = format!(
        "{{\"op\":\"analyze\",\"client\":\"simple\",\"client_id\":\"\",\"program\":\"{}\"}}",
        json_escape(&corpus::fig2_exchange().source)
    );
    assert!(served(svc.handle_line_as(&empty_id, "127.0.0.1:50003")));
    let again = svc.handle_line_as(&empty_id, "127.0.0.1:50003");
    assert!(
        again.line().contains("\"code\":\"quota-exceeded\""),
        "{}",
        again.line()
    );

    // An explicit client_id overrides the peer: the same id is one
    // bucket no matter which connection it arrives on.
    let with_id = format!(
        "{{\"op\":\"analyze\",\"client\":\"simple\",\"client_id\":\"team-a\",\"program\":\"{}\"}}",
        json_escape(&corpus::fig2_exchange().source)
    );
    assert!(served(svc.handle_line_as(&with_id, "127.0.0.1:50004")));
    let cross_peer = svc.handle_line_as(&with_id, "127.0.0.1:50005");
    assert!(
        cross_peer.line().contains("\"code\":\"quota-exceeded\""),
        "{}",
        cross_peer.line()
    );
}
