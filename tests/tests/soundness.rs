//! Soundness properties of the whole pipeline, checked on randomized
//! (seeded, in-tree RNG) program families:
//!
//! * whenever the static analysis reports an *exact* verdict, its
//!   statement-level topology covers every message of every concrete
//!   execution (for all tested `np ≥ min_np`);
//! * parameterized program families (random constants/offsets) stay
//!   sound, not just the fixed corpus.

use mpl_cfg::Cfg;
use mpl_core::{analyze_cfg, AnalysisConfig, Client, StaticTopology, Verdict};
use mpl_lang::{corpus, parse_program};
use mpl_rng::Rng64;
use mpl_sim::Simulator;

/// Analyzes `src` and, if exact, checks coverage for each np.
fn assert_sound(src: &str, nps: &[u64]) {
    let program = parse_program(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    let cfg = Cfg::build(&program);
    let result = analyze_cfg(&cfg, &AnalysisConfig::default());
    if !result.is_exact() {
        return; // ⊤ / deadlock verdicts promise nothing about topology.
    }
    let topo = StaticTopology::from_result(&result);
    for &np in nps {
        let outcome = Simulator::from_cfg(Cfg::build(&program), np)
            .run()
            .unwrap_or_else(|e| panic!("np={np}: {e}\n{src}"));
        if !outcome.is_complete() {
            panic!("exact verdict but runtime deadlock at np={np}\n{src}");
        }
        assert!(
            topo.covers(&outcome.topology.site_pairs()),
            "np={np}: static {:?} misses {:?}\n{src}",
            topo.site_pairs(),
            outcome.topology.site_pairs()
        );
    }
}

#[test]
fn corpus_exact_verdicts_are_sound_for_many_np() {
    let nps: Vec<u64> = (4..=12).collect();
    for prog in corpus::all() {
        // Skip programs that need symbolic grid parameters at runtime.
        if prog.source.contains("nrows") {
            continue;
        }
        let cfg = Cfg::build(&prog.program);
        let result = analyze_cfg(&cfg, &AnalysisConfig::default());
        if !result.is_exact() {
            continue;
        }
        let topo = StaticTopology::from_result(&result);
        for &np in &nps {
            let outcome = Simulator::from_cfg(Cfg::build(&prog.program), np)
                .run()
                .unwrap();
            if !outcome.is_complete() {
                panic!("{}: exact verdict but deadlock at np={np}", prog.name);
            }
            assert!(
                topo.covers(&outcome.topology.site_pairs()),
                "{} at np={np}",
                prog.name
            );
        }
    }
}

#[test]
fn exact_verdict_never_hides_a_leak() {
    // If the analysis is exact and reports no leaks, the simulator must
    // not observe one either.
    for prog in corpus::all() {
        if prog.source.contains("nrows") {
            continue;
        }
        let cfg = Cfg::build(&prog.program);
        let result = analyze_cfg(&cfg, &AnalysisConfig::default());
        if !result.is_exact() || !result.leaks.is_empty() {
            continue;
        }
        for np in [4u64, 7] {
            let outcome = Simulator::from_cfg(Cfg::build(&prog.program), np)
                .run()
                .unwrap();
            assert!(
                outcome.leaks.is_empty(),
                "{}: static no-leak but runtime leaked at np={np}",
                prog.name
            );
        }
    }
}

/// Broadcast family: the root relays `v` to everyone; the analysis must
/// stay exact and sound for any payload and any direction of the loop
/// bound expression.
#[test]
fn broadcast_family_sound() {
    let mut rng = Rng64::seed_from_u64(0x50D0);
    for _ in 0..40 {
        let v = rng.i64_in(-100, 100);
        let bound = if rng.flip() { "np - 2" } else { "np - 1" };
        let src = format!(
            "x := {v};\n\
             if id = 0 then\n  for i = 1 to {bound} do\n    send x -> i;\n  end\n\
             else\n  if id <= {bound} then\n    recv y <- 0;\n  end\nend\n"
        );
        assert_sound(&src, &[4, 6, 9]);
    }
}

/// Pair exchange between rank 0 and a random fixed partner.
#[test]
fn pair_family_sound() {
    let mut rng = Rng64::seed_from_u64(0x50D1);
    for _ in 0..40 {
        // min_np = 4 guarantees the partner exists.
        let partner = rng.i64_in(1, 4);
        let v = rng.i64_in(-50, 50);
        let src = format!(
            "if id = 0 then\n  x := {v};\n  send x -> {partner};\n  recv y <- {partner};\n\
             else\n  if id = {partner} then\n    recv y <- 0;\n    send y -> 0;\n  end\nend\n"
        );
        assert_sound(&src, &[4, 5, 8]);
    }
}

/// Exchange-with-root carrying a random payload expression.
#[test]
fn exchange_family_sound() {
    let mut rng = Rng64::seed_from_u64(0x50D2);
    for _ in 0..40 {
        let v = rng.i64_in(0, 1000);
        let src = format!(
            "x := {v};\n\
             if id = 0 then\n  for i = 1 to np - 1 do\n    send x -> i;\n    recv y <- i;\n  end\n\
             else\n  recv y <- 0;\n  send x -> 0;\nend\n"
        );
        assert_sound(&src, &[4, 7, 10]);
    }
}

/// The verdict enum is exhaustive: every corpus program lands in one of
/// the three verdicts and the result is internally consistent.
#[test]
fn verdicts_partition() {
    let all = corpus::all();
    for prog in &all {
        let result = mpl_core::analyze(&prog.program, &AnalysisConfig::default());
        match &result.verdict {
            Verdict::Exact => {}
            Verdict::Deadlock { blocked } => assert!(!blocked.is_empty()),
            Verdict::Top { reason } => assert!(!reason.to_string().is_empty()),
            other => panic!("unexpected verdict {other:?}"),
        }
        // The simple client is never *more* capable than the cartesian
        // one on this corpus: if simple succeeds, cartesian does too.
        let simple = mpl_core::analyze(
            &prog.program,
            &AnalysisConfig::builder()
                .client(Client::Simple)
                .build()
                .expect("valid config"),
        );
        if simple.is_exact() {
            assert!(
                result.is_exact(),
                "{}: simple exact but cartesian {:?}",
                prog.name,
                result.verdict
            );
        }
    }
}
