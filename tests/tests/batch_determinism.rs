//! Determinism of the parallel batch runtime (mpl-runtime / BatchAnalyzer
//! / `mpl analyze-corpus`): for the whole corpus, verdicts, topologies and
//! match events must be byte-identical no matter how many workers run the
//! batch. Also pins the `--json` output schema.

use mpl_core::{AnalysisConfig, BatchAnalyzer, BatchJob, BatchReport, Client};
use mpl_lang::corpus;

/// Renders closure counters without `closure_nanos` (wall time — the one
/// field that legitimately varies between runs).
fn closure_counts(c: &mpl_domains::ClosureStats) -> String {
    format!(
        "full={}/{} incr={}/{}",
        c.full_closures, c.full_closure_vars, c.incremental_closures, c.incremental_closure_vars
    )
}

/// Every deterministic field of a batch report, rendered to one string.
/// Wall times and panic worker ids are the only fields excluded (they
/// vary by nature).
fn fingerprint(report: &BatchReport) -> String {
    let mut out = String::new();
    for rec in &report.records {
        out.push_str(&format!("{}\noutcome: {:?}\n", rec.name, rec.outcome));
        match &rec.result {
            Some(result) => out.push_str(&format!(
                "verdict: {:?}\nmatches: {:?}\nevents: {:?}\nleaks: {:?}\nprints: {:?}\n\
                 steps: {}\nclosure: {}\n\n",
                result.verdict,
                result.matches,
                result.events,
                result.leaks,
                result.prints,
                result.steps,
                closure_counts(&result.closure_stats),
            )),
            None => out.push_str("no result\n\n"),
        }
    }
    let s = &report.summary;
    out.push_str(&format!(
        "summary: programs={} exact={} deadlock={} top={} completed={} degraded={} \
         timed_out={} panicked={} errors={} matches={} leaks={} steps={} closure={}\n",
        s.programs,
        s.exact,
        s.deadlock,
        s.top,
        s.completed,
        s.degraded,
        s.timed_out,
        s.panicked,
        s.errors,
        s.matches,
        s.leaks,
        s.steps,
        closure_counts(&s.closure)
    ));
    out
}

fn corpus_batch(workers: usize, client: Client) -> BatchReport {
    let mut batch = BatchAnalyzer::new().workers(workers);
    for prog in corpus::all() {
        let config = AnalysisConfig::builder()
            .client(client)
            .build()
            .expect("valid config");
        batch.push(BatchJob::new(prog.name, prog.program, config));
    }
    batch.run()
}

#[test]
fn corpus_batch_is_byte_identical_for_1_and_8_workers() {
    for client in [Client::Cartesian, Client::Simple] {
        let seq = fingerprint(&corpus_batch(1, client));
        let par = fingerprint(&corpus_batch(8, client));
        assert_eq!(seq, par, "batch output diverged at 8 workers ({client:?})");
    }
}

#[test]
fn mixed_config_batch_is_deterministic() {
    // Jobs with different clients and budgets in one batch: per-job
    // config must travel with the job, not leak across workers.
    let build = |workers: usize| {
        let mut batch = BatchAnalyzer::new().workers(workers);
        for (i, prog) in corpus::all().into_iter().enumerate() {
            let client = if i % 2 == 0 {
                Client::Cartesian
            } else {
                Client::Simple
            };
            let config = AnalysisConfig::builder()
                .client(client)
                .min_np(4 + (i as i64 % 3))
                .max_steps(10_000)
                .build()
                .expect("valid config");
            batch.push(BatchJob::new(prog.name, prog.program, config));
        }
        batch.run()
    };
    let seq = fingerprint(&build(1));
    for workers in [2, 8] {
        assert_eq!(seq, fingerprint(&build(workers)), "diverged at {workers}");
    }
}

#[test]
fn repeated_batches_are_stable() {
    // Re-running on the *same* (already warmed-up) thread pool state must
    // not change results either: the per-job interner reset makes runs
    // history-independent.
    let first = fingerprint(&corpus_batch(4, Client::Cartesian));
    let second = fingerprint(&corpus_batch(4, Client::Cartesian));
    assert_eq!(first, second);
}

fn cli(args: &[&str]) -> String {
    let args: Vec<String> = args.iter().map(|s| (*s).to_owned()).collect();
    let out = mpl_cli::run_command(&args, "").expect("analyze-corpus runs");
    assert_eq!(out.code, 0);
    out.text
}

#[test]
fn cli_corpus_output_identical_for_1_and_8_jobs() {
    assert_eq!(
        cli(&["analyze-corpus", "--jobs", "1"]),
        cli(&["analyze-corpus", "--jobs", "8"])
    );
    assert_eq!(
        cli(&["analyze-corpus", "--jobs", "1", "--json"]),
        cli(&["analyze-corpus", "--jobs", "8", "--json"])
    );
}

#[test]
fn json_schema_is_pinned() {
    let text = cli(&["analyze-corpus", "--json", "--jobs", "2"]);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), corpus::all().len() + 1);

    // Program records: fixed key order, one JSON object per line.
    let program_keys = [
        "\"v\":1",
        "\"type\":\"program\"",
        "\"name\":",
        "\"client\":",
        "\"verdict\":",
        "\"reason\":",
        "\"outcome\":",
        "\"matches\":",
        "\"leaks\":",
        "\"steps\":",
        "\"topology\":[",
    ];
    for line in &lines[..lines.len() - 1] {
        let mut pos = 0;
        for key in &program_keys {
            let at = line[pos..]
                .find(key)
                .unwrap_or_else(|| panic!("key {key} missing or out of order in {line}"));
            pos += at;
        }
        // No timing fields without --timing.
        assert!(!line.contains("wall_nanos"), "{line}");
    }

    // Summary record: fixed key order.
    let summary = lines.last().unwrap();
    let summary_keys = [
        "\"v\":1",
        "\"type\":\"summary\"",
        "\"programs\":",
        "\"exact\":",
        "\"deadlock\":",
        "\"top\":",
        "\"completed\":",
        "\"degraded\":",
        "\"timed_out\":",
        "\"panicked\":",
        "\"errors\":",
        "\"matches\":",
        "\"leaks\":",
        "\"steps\":",
        "\"full_closures\":",
        "\"incremental_closures\":",
    ];
    let mut pos = 0;
    for key in &summary_keys {
        let at = summary[pos..]
            .find(key)
            .unwrap_or_else(|| panic!("key {key} missing or out of order in {summary}"));
        pos += at;
    }

    // Semantic pins on a known-stable corpus entry: Fig 2's exchange is
    // exact with its two send/recv pairs under the default client.
    let fig2 = lines
        .iter()
        .find(|l| l.contains("\"name\":\"fig2_exchange\""))
        .expect("fig2_exchange record");
    assert!(fig2.contains("\"verdict\":\"exact\""), "{fig2}");
    assert!(fig2.contains("\"reason\":null"), "{fig2}");
    assert!(fig2.contains("\"outcome\":\"completed\""), "{fig2}");
    assert!(fig2.contains("\"matches\":2"), "{fig2}");
    // The deadlocking pair is reported as such with no topology.
    let dead = lines
        .iter()
        .find(|l| l.contains("\"name\":\"deadlock_pair\""))
        .expect("deadlock_pair record");
    assert!(dead.contains("\"verdict\":\"deadlock\""), "{dead}");
    assert!(dead.contains("\"topology\":[]"), "{dead}");
}
