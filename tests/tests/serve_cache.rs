//! Cache and backpressure behaviour of the serving stack, end to end:
//! a cached daemon response must be byte-identical to the cold one,
//! the cold one byte-identical to `mpl analyze --json`, counters must
//! be deterministic under any worker count, a fingerprint collision
//! must fall back to recomputation (never a wrong answer), and a
//! saturated admission gate must reject — not hang.

use mpl_core::{json_escape, AnalysisRequest, AnalysisService, ResultCache, ServiceConfig};
use mpl_lang::corpus;

fn analyze_line(source: &str) -> String {
    format!(
        "{{\"op\":\"analyze\",\"program\":\"{}\"}}",
        json_escape(source)
    )
}

#[test]
fn cached_response_is_byte_identical_to_cold_and_to_analyze_json() {
    let prog = corpus::fig2_exchange();
    let svc = AnalysisService::new(ServiceConfig::default());
    let line = analyze_line(&prog.source);

    let cold = svc.handle_line(&line).line().to_owned();
    let warm = svc.handle_line(&line).line().to_owned();
    assert_eq!(cold, warm, "cache hit must replay the exact bytes");
    let stats = svc.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));

    // The daemon's cold path renders exactly what the one-shot CLI
    // prints: the cache (and the daemon itself) are invisible in the
    // wire format.
    let args: Vec<String> = ["analyze", "prog.mpl", "--json"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let cli = mpl_cli::run_command(&args, &prog.source).expect("analyze runs");
    assert_eq!(cli.code, 0);
    assert_eq!(cli.text, format!("{cold}\n"));
}

#[test]
fn batch_responses_and_counters_match_for_any_worker_count() {
    let lines: Vec<String> = corpus::all()
        .into_iter()
        .take(8)
        .map(|p| analyze_line(&p.source))
        .collect();
    let baseline = {
        let svc = AnalysisService::new(ServiceConfig::default());
        svc.handle_batch(&lines, 1)
    };
    for jobs in [4usize, 8] {
        let svc = AnalysisService::new(ServiceConfig::default());
        let cold = svc.handle_batch(&lines, jobs);
        assert_eq!(cold, baseline, "responses diverged at jobs={jobs}");
        let stats = svc.cache_stats();
        assert_eq!(
            (stats.hits, stats.misses, stats.collisions),
            (0, 8, 0),
            "jobs={jobs}"
        );
        let warm = svc.handle_batch(&lines, jobs);
        assert_eq!(warm, baseline, "warm responses diverged at jobs={jobs}");
        let stats = svc.cache_stats();
        assert_eq!((stats.hits, stats.misses), (8, 8), "jobs={jobs}");
    }
}

#[test]
fn fingerprint_collision_falls_back_to_recompute() {
    // Two requests forced onto the same 64-bit key: the stored check
    // string disagrees, so the lookup must miss (counted as a
    // collision) rather than serve the other request's bytes.
    let mut cache = ResultCache::new(8);
    let key = 0xDEAD_BEEF_u64;
    cache.insert(key, "check-a".to_owned(), "body-a".to_owned());
    assert_eq!(cache.lookup(key, "check-b"), None, "collision must miss");
    assert_eq!(cache.stats().collisions, 1);

    // The colliding request's own insert takes the slot over and both
    // subsequent lookups behave like ordinary entries.
    cache.insert(key, "check-b".to_owned(), "body-b".to_owned());
    assert_eq!(cache.lookup(key, "check-b").as_deref(), Some("body-b"));
    assert_eq!(cache.lookup(key, "check-a"), None, "old check is gone");
}

#[test]
fn distinct_configs_never_share_a_cache_entry() {
    // Same program under different request knobs must produce distinct
    // fingerprints (the check string covers the whole config).
    let prog = corpus::fig2_exchange();
    let base = AnalysisRequest::builder()
        .source(&prog.source)
        .build()
        .expect("valid request");
    let tweaked = AnalysisRequest::builder()
        .source(&prog.source)
        .min_np(5)
        .build()
        .expect("valid request");
    assert_ne!(base.cache_check(), tweaked.cache_check());
    assert_ne!(base.fingerprint(), tweaked.fingerprint());
}

#[test]
fn saturated_gate_rejects_immediately_with_structure() {
    let svc = AnalysisService::new(ServiceConfig {
        max_in_flight: 2,
        ..ServiceConfig::default()
    });
    let _a = svc.gate().try_admit().expect("permit 1");
    let _b = svc.gate().try_admit().expect("permit 2");
    let start = std::time::Instant::now();
    let reply = svc.handle_line(&analyze_line(&corpus::fig2_exchange().source));
    assert!(
        reply
            .line()
            .starts_with("{\"v\":1,\"type\":\"rejected\",\"code\":\"queue-full\""),
        "{reply:?}"
    );
    assert!(
        start.elapsed() < std::time::Duration::from_secs(5),
        "rejection must be immediate, not queued"
    );
    assert_eq!(svc.gate().rejected(), 1);
}
