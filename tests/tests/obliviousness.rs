//! Empirical check of the paper's Appendix theorem (experiment E9):
//! the execution model is *interleaving-oblivious* — final stores,
//! printed values and the communication topology are identical under any
//! schedule.

use mpl_lang::corpus;
use mpl_rng::Rng64;
use mpl_sim::{Schedule, SimConfig, Simulator};

fn deterministic_corpus() -> Vec<corpus::CorpusProgram> {
    vec![
        corpus::fig2_exchange(),
        corpus::exchange_with_root(),
        corpus::fanout_broadcast(),
        corpus::gather_to_root(),
        corpus::mdcask_full(),
        corpus::nearest_neighbor_shift(),
        corpus::left_shift(),
        corpus::ring_conditional(),
        corpus::ring_uniform(),
        corpus::const_relay(),
        corpus::scatter_indexed(),
        corpus::message_leak(),
    ]
}

#[test]
fn all_corpus_programs_are_schedule_oblivious() {
    for prog in deterministic_corpus() {
        let np = prog.min_procs.max(5);
        let base = Simulator::new(&prog.program, np).run().unwrap();
        for seed in 0..20u64 {
            let alt = Simulator::new(&prog.program, np)
                .with_config(SimConfig {
                    schedule: Schedule::Random { seed },
                    ..SimConfig::default()
                })
                .run()
                .unwrap();
            assert_eq!(base.status, alt.status, "{} seed {seed}", prog.name);
            assert_eq!(base.stores, alt.stores, "{} seed {seed}", prog.name);
            assert_eq!(base.prints, alt.prints, "{} seed {seed}", prog.name);
            assert_eq!(base.topology, alt.topology, "{} seed {seed}", prog.name);
            assert_eq!(base.leaks, alt.leaks, "{} seed {seed}", prog.name);
        }
    }
}

/// Any (seed, np) combination leaves the observable outcome of the
/// exchange-with-root program unchanged.
#[test]
fn exchange_with_root_oblivious() {
    let mut rng = Rng64::seed_from_u64(0x0B11);
    let prog = corpus::exchange_with_root();
    for _ in 0..48 {
        let seed = rng.u64_in(0, 10_000);
        let np = rng.u64_in(2, 12);
        let base = Simulator::new(&prog.program, np).run().unwrap();
        let alt = Simulator::new(&prog.program, np)
            .with_config(SimConfig {
                schedule: Schedule::Random { seed },
                ..SimConfig::default()
            })
            .run()
            .unwrap();
        assert_eq!(base.stores, alt.stores, "seed {seed} np {np}");
        assert_eq!(base.topology, alt.topology, "seed {seed} np {np}");
    }
}

/// Same for the concrete square transpose.
#[test]
fn transpose_oblivious() {
    let mut rng = Rng64::seed_from_u64(0x0B12);
    for _ in 0..48 {
        let seed = rng.u64_in(0, 10_000);
        let nrows = rng.i64_in(2, 5);
        let prog = corpus::nas_cg_transpose_square(corpus::GridDims::Concrete {
            nrows,
            ncols: nrows,
        });
        let np = (nrows * nrows) as u64;
        let base = Simulator::new(&prog.program, np).run().unwrap();
        let alt = Simulator::new(&prog.program, np)
            .with_config(SimConfig {
                schedule: Schedule::Random { seed },
                ..SimConfig::default()
            })
            .run()
            .unwrap();
        assert_eq!(base.stores, alt.stores, "seed {seed} nrows {nrows}");
        assert_eq!(base.topology, alt.topology, "seed {seed} nrows {nrows}");
    }
}
