//! End-to-end reproduction of the paper's worked figures (experiments
//! E1–E4 in DESIGN.md): for each figure, the static analysis must reach
//! the paper's verdict and its statement-level topology must cover every
//! message of concrete executions across a range of process counts.

use mpl_cfg::Cfg;
use mpl_core::{analyze_cfg, classify, AnalysisConfig, Client, Pattern, StaticTopology, Verdict};
use mpl_lang::corpus::{self, CorpusProgram, GridDims};
use mpl_sim::Simulator;

fn check_covers_runtime(prog: &CorpusProgram, client: Client, nps: &[u64]) -> StaticTopology {
    let cfg = Cfg::build(&prog.program);
    let result = analyze_cfg(
        &cfg,
        &AnalysisConfig::builder()
            .client(client)
            .build()
            .expect("valid config"),
    );
    assert!(
        result.is_exact(),
        "{}: expected exact verdict, got {:?}",
        prog.name,
        result.verdict
    );
    let topo = StaticTopology::from_result(&result);
    for &np in nps {
        let outcome = Simulator::from_cfg(Cfg::build(&prog.program), np)
            .run()
            .unwrap_or_else(|e| panic!("{} np={np}: {e}", prog.name));
        assert!(
            outcome.is_complete(),
            "{} np={np} did not complete",
            prog.name
        );
        assert!(
            topo.covers(&outcome.topology.site_pairs()),
            "{} np={np}: static {:?} misses runtime {:?}",
            prog.name,
            topo.site_pairs(),
            outcome.topology.site_pairs()
        );
        assert!(outcome.leaks.is_empty(), "{} np={np} leaked", prog.name);
    }
    topo
}

#[test]
fn e1_fig2_exchange() {
    let prog = corpus::fig2_exchange();
    let topo = check_covers_runtime(&prog, Client::Simple, &[4, 5, 9]);
    // Exactly the two matches of Fig 2(d), nothing more.
    assert_eq!(topo.site_pairs().len(), 2);
    // And the runtime topology at any np equals the static one exactly.
    let outcome = Simulator::new(&prog.program, 6).run().unwrap();
    assert_eq!(*topo.site_pairs(), outcome.topology.site_pairs());
}

#[test]
fn e1_fig2_constant_propagation() {
    // Both prints provably output 5 — the headline of Fig 2.
    let prog = corpus::fig2_exchange();
    let result = mpl_core::analyze(&prog.program, &AnalysisConfig::default());
    let constant_prints: Vec<_> = result
        .prints
        .iter()
        .filter(|p| p.value == Some(5))
        .collect();
    assert_eq!(constant_prints.len(), 2, "{:?}", result.prints);
}

#[test]
fn e2_fig5_exchange_with_root() {
    let prog = corpus::exchange_with_root();
    let topo = check_covers_runtime(&prog, Client::Simple, &[4, 5, 8, 13]);
    assert_eq!(
        topo.site_pairs().len(),
        2,
        "root send->worker recv, worker send->root recv"
    );
    let result = mpl_core::analyze(&prog.program, &AnalysisConfig::default());
    assert_eq!(classify(&result), Pattern::ExchangeWithRoot);
}

#[test]
fn e2_fig1_full_mdcask() {
    let prog = corpus::mdcask_full();
    let topo = check_covers_runtime(&prog, Client::Simple, &[4, 6, 9]);
    assert_eq!(topo.site_pairs().len(), 3);
    let result = mpl_core::analyze(&prog.program, &AnalysisConfig::default());
    assert_eq!(classify(&result), Pattern::ExchangeWithRoot);
}

#[test]
fn e3_fig6_transpose_square_symbolic() {
    let prog = corpus::nas_cg_transpose_square(GridDims::Symbolic);
    // The cartesian client matches for ALL square grids at once.
    let result = mpl_core::analyze(&prog.program, &AnalysisConfig::default());
    assert!(result.is_exact(), "{:?}", result.verdict);
    assert_eq!(classify(&result), Pattern::PartnerExchange);
    // The simple client must give up — this is the paper's motivation
    // for HSMs.
    let simple = mpl_core::analyze(
        &prog.program,
        &AnalysisConfig::builder()
            .client(Client::Simple)
            .build()
            .expect("valid config"),
    );
    assert!(matches!(simple.verdict, Verdict::Top { .. }));
}

#[test]
fn e3_fig6_transpose_square_concrete_matches_runtime() {
    for nrows in [2i64, 3, 4] {
        let prog = corpus::nas_cg_transpose_square(GridDims::Concrete {
            nrows,
            ncols: nrows,
        });
        let np = (nrows * nrows) as u64;
        let cfg = Cfg::build(&prog.program);
        let result = analyze_cfg(&cfg, &AnalysisConfig::default());
        assert!(result.is_exact(), "nrows={nrows}: {:?}", result.verdict);
        let topo = StaticTopology::from_result(&result);
        let outcome = Simulator::from_cfg(cfg, np).run().unwrap();
        assert!(outcome.is_complete());
        assert!(topo.covers(&outcome.topology.site_pairs()), "nrows={nrows}");
    }
}

#[test]
fn e3_fig6_transpose_rect_symbolic() {
    let prog = corpus::nas_cg_transpose_rect(GridDims::Symbolic);
    let result = mpl_core::analyze(&prog.program, &AnalysisConfig::default());
    assert!(result.is_exact(), "{:?}", result.verdict);
    // Concrete cross-check on a 2x4 grid.
    let conc = corpus::nas_cg_transpose_rect(GridDims::Concrete { nrows: 2, ncols: 4 });
    let cfg = Cfg::build(&conc.program);
    let outcome = Simulator::from_cfg(cfg, 8).run().unwrap();
    assert!(outcome.is_complete());
    assert_eq!(outcome.topology.rank_pairs().len(), 8);
}

#[test]
fn e4_fig7_nearest_neighbor_shift() {
    let prog = corpus::nearest_neighbor_shift();
    let topo = check_covers_runtime(&prog, Client::Simple, &[4, 6, 9, 12]);
    // Fig 8's three matches collapse to two statement-level pairs
    // (edge send and interior send target the same recv nodes).
    assert!(!topo.site_pairs().is_empty());
    let result = mpl_core::analyze(&prog.program, &AnalysisConfig::default());
    assert_eq!(classify(&result), Pattern::Shift { offset: 1 });
}

#[test]
fn e4_left_shift_mirror() {
    let prog = corpus::left_shift();
    check_covers_runtime(&prog, Client::Simple, &[4, 6, 10]);
    let result = mpl_core::analyze(&prog.program, &AnalysisConfig::default());
    assert_eq!(classify(&result), Pattern::Shift { offset: -1 });
}

#[test]
fn e4_stencil_2d_concrete() {
    for (nrows, ncols) in [(3i64, 3i64), (4, 4), (2, 5)] {
        let prog = corpus::stencil_2d_vertical(GridDims::Concrete { nrows, ncols });
        let np = (nrows * ncols) as u64;
        let cfg = Cfg::build(&prog.program);
        let result = analyze_cfg(
            &cfg,
            &AnalysisConfig::builder()
                .client(Client::Simple)
                .build()
                .expect("valid config"),
        );
        assert!(result.is_exact(), "{nrows}x{ncols}: {:?}", result.verdict);
        let topo = StaticTopology::from_result(&result);
        let outcome = Simulator::from_cfg(cfg, np).run().unwrap();
        assert!(outcome.is_complete());
        assert!(
            topo.covers(&outcome.topology.site_pairs()),
            "{nrows}x{ncols}"
        );
        assert_eq!(outcome.topology.len(), ((nrows - 1) * ncols) as usize);
    }
}

#[test]
fn limitations_are_reported_not_guessed() {
    // §X limitations must surface as ⊤ (or deadlock), never as a wrong
    // "exact" topology.
    for prog in [corpus::ring_uniform(), corpus::pairwise_exchange()] {
        let result = mpl_core::analyze(&prog.program, &AnalysisConfig::default());
        assert!(
            matches!(result.verdict, Verdict::Top { .. }),
            "{}: {:?}",
            prog.name,
            result.verdict
        );
    }
}

#[test]
fn broadcast_and_gather_and_scatter() {
    for (prog, pattern) in [
        (corpus::fanout_broadcast(), Pattern::Broadcast),
        (corpus::gather_to_root(), Pattern::Gather),
        (corpus::scatter_indexed(), Pattern::Broadcast),
    ] {
        let topo = check_covers_runtime(&prog, Client::Simple, &[4, 7]);
        assert_eq!(topo.site_pairs().len(), 1, "{}", prog.name);
        let result = mpl_core::analyze(&prog.program, &AnalysisConfig::default());
        assert_eq!(classify(&result), pattern, "{}", prog.name);
    }
}

#[test]
fn const_relay_propagates_through_hops() {
    let prog = corpus::const_relay();
    check_covers_runtime(&prog, Client::Simple, &[4, 6]);
    let result = mpl_core::analyze(&prog.program, &AnalysisConfig::default());
    assert_eq!(
        result.prints.iter().filter(|p| p.value == Some(11)).count(),
        3
    );
}

#[test]
fn extension_pipeline_is_exact_shift_family() {
    let prog = corpus::pipeline_double();
    let topo = check_covers_runtime(&prog, Client::Simple, &[4, 8, 12]);
    assert_eq!(topo.site_pairs().len(), 3);
}

#[test]
fn extension_tree_broadcast_is_top_but_runs() {
    // §X lists tree-shaped patterns as future work: the analysis must
    // give up honestly, while the simulator confirms the O(log np)
    // behaviour that motivates collective replacement.
    let prog = corpus::tree_broadcast();
    let result = mpl_core::analyze(&prog.program, &AnalysisConfig::default());
    assert!(
        matches!(result.verdict, Verdict::Top { .. }),
        "{:?}",
        result.verdict
    );
    for np in [4u64, 16, 32] {
        let out = Simulator::new(&prog.program, np).run().unwrap();
        assert!(out.is_complete());
        assert!(out.leaks.is_empty());
        // Every rank got the value 42.
        for rank in 0..np as usize {
            assert_eq!(out.stores[rank]["x"], 42, "rank {rank} at np={np}");
        }
        // Logarithmic critical path: 2*log2(np) hops suffice.
        let log2 = 64 - (np - 1).leading_zeros() as u64;
        assert!(
            out.critical_path() <= 2 * log2 + 2,
            "np={np}: critical path {} not logarithmic",
            out.critical_path()
        );
    }
}

#[test]
fn fanout_vs_tree_critical_path_contrast() {
    // The quantitative Fig 1 motivation: the same broadcast as a fan-out
    // is Θ(np) deep, as a tree Θ(log np).
    let fan = corpus::fanout_broadcast();
    let tree = corpus::tree_broadcast();
    let np = 32;
    let fan_path = Simulator::new(&fan.program, np)
        .run()
        .unwrap()
        .critical_path();
    let tree_path = Simulator::new(&tree.program, np)
        .run()
        .unwrap()
        .critical_path();
    assert!(
        fan_path >= 3 * tree_path,
        "fan {fan_path} vs tree {tree_path}"
    );
}
