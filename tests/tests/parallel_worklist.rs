//! Determinism contract of the two-tier frontier executor: for any
//! `intra_jobs` value the engine must produce byte-identical results —
//! verdicts, matched pairs, step counts, match events, prints, leaks
//! and closure counters — because parallelism only reorders *when*
//! successor states are computed, never the order they are merged.
//!
//! Also pins the failure modes: a panic inside a frontier task surfaces
//! as a structured `JobOutcome::Panicked` (never a hang), with the same
//! message the sequential path would have produced, and a cancelled
//! deadline stops the engine mid-round within the polling interval.

use std::fmt::Write as _;

use mpl_core::{
    analyze, analyze_cfg_with, AnalysisConfig, AnalysisRequest, Client, JobOutcome, ObserverStack,
    ScheduleOrder, StatsObserver, TopReason, Verdict, CANCEL_CHECK_STEPS,
};
use mpl_lang::corpus;
use mpl_runtime::CancelToken;

/// Deterministic snapshot of one analysis: everything the result
/// exposes except wall-clock durations.
fn snapshot(out: &mut String, name: &str, client: Client, config: &AnalysisConfig) {
    let prog = corpus::all().into_iter().find(|p| p.name == name).unwrap();
    let result = analyze(&prog.program, config);
    let _ = writeln!(out, "{name} / {client:?}");
    let _ = writeln!(out, "  verdict: {:?}", result.verdict);
    let _ = writeln!(out, "  steps: {}", result.steps);
    let _ = writeln!(out, "  matches: {:?}", result.matches);
    let events: Vec<String> = result
        .events
        .iter()
        .map(|e| format!("{:?}@{}->{}", e.kind, e.send_node, e.recv_node))
        .collect();
    let _ = writeln!(out, "  events: [{}]", events.join(", "));
    let prints: Vec<String> = result
        .prints
        .iter()
        .map(|p| format!("{}={:?}", p.node, p.value))
        .collect();
    let _ = writeln!(out, "  prints: [{}]", prints.join(", "));
    let _ = writeln!(out, "  leaks: {:?}", result.leaks);
    let cs = &result.closure_stats;
    let _ = writeln!(
        out,
        "  closures: full={} incr={}",
        cs.full_closures, cs.incremental_closures
    );
}

fn corpus_snapshot(par: usize, order: ScheduleOrder) -> String {
    let mut out = String::new();
    for prog in corpus::all() {
        for client in [Client::Simple, Client::Cartesian] {
            let config = AnalysisConfig::builder()
                .client(client)
                .intra_jobs(par)
                .schedule_order(order)
                .build()
                .expect("valid config");
            snapshot(&mut out, prog.name, client, &config);
        }
    }
    out
}

#[test]
fn corpus_is_byte_identical_for_any_worker_count() {
    let base = corpus_snapshot(1, ScheduleOrder::Fifo);
    for par in [2, 8] {
        assert_eq!(
            base,
            corpus_snapshot(par, ScheduleOrder::Fifo),
            "corpus snapshot diverged at intra_jobs={par}"
        );
    }
}

#[test]
fn priority_order_is_deterministic_and_semantically_equivalent() {
    // Priority scheduling may take a different number of steps than
    // FIFO, but it must (a) be byte-identical across worker counts and
    // (b) reach the same verdicts, matches and prints.
    let pri = corpus_snapshot(1, ScheduleOrder::Priority);
    for par in [2, 8] {
        assert_eq!(
            pri,
            corpus_snapshot(par, ScheduleOrder::Priority),
            "priority snapshot diverged at intra_jobs={par}"
        );
    }
    let strip_steps = |s: &str| -> String {
        s.lines()
            .filter(|l| !l.trim_start().starts_with("steps:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(
        strip_steps(&corpus_snapshot(1, ScheduleOrder::Fifo)),
        strip_steps(&pri),
        "priority order changed analysis semantics, not just step order"
    );
}

#[test]
fn cli_analyze_corpus_is_byte_identical_across_par() {
    let cli = |extra: &[&str]| {
        let mut args = vec!["analyze-corpus".to_owned(), "--json".to_owned()];
        args.extend(extra.iter().map(|s| (*s).to_owned()));
        let out = mpl_cli::run_command(&args, "").expect("analyze-corpus runs");
        assert_eq!(out.code, 0, "{}", out.text);
        out.text
    };
    let base = cli(&[]);
    for par in ["2", "8"] {
        assert_eq!(
            base,
            cli(&["--par", par]),
            "analyze-corpus NDJSON diverged at --par {par}"
        );
    }
    // `--par` composes with inter-program `--jobs` parallelism.
    assert_eq!(base, cli(&["--par", "2", "--jobs", "4"]));
}

#[test]
fn cli_analyze_stats_deterministic_lines_match_across_par() {
    // `--stats` output contains wall-clock phase times; everything else
    // (verdict, topology, closure counters, event counters, stored-state
    // sizes) must be byte-identical for any --par value.
    let strip_timing = |text: &str| -> String {
        text.lines()
            .filter(|l| !l.starts_with("engine phases:") && !l.starts_with("closure stats:"))
            .collect::<Vec<_>>()
            .join("\n")
    };
    let prog = corpus::fig2_exchange();
    let cli = |par: &str| {
        let args: Vec<String> = ["analyze", "f.mpl", "--stats", "--trace", "--par", par]
            .iter()
            .map(|s| (*s).to_owned())
            .collect();
        let out = mpl_cli::run_command(&args, &prog.source).expect("analyze runs");
        assert_eq!(out.code, 0, "{}", out.text);
        out.text
    };
    let base = strip_timing(&cli("1"));
    assert!(base.contains("step 1:"), "{base}");
    assert!(base.contains("engine events:"), "{base}");
    for par in ["2", "8"] {
        assert_eq!(
            base,
            strip_timing(&cli(par)),
            "--stats diverged at --par {par}"
        );
    }
}

#[test]
fn profile_reports_frontier_and_worker_occupancy() {
    let prog = corpus::mdcask_full();
    let cfg = mpl_cfg::Cfg::build(&prog.program);
    let config = AnalysisConfig::builder()
        .intra_jobs(4)
        .build()
        .expect("valid config");
    let mut stats = StatsObserver::new();
    let mut stack = ObserverStack::new();
    stack.push(&mut stats);
    let result = analyze_cfg_with(&cfg, &config, &mut stack);
    assert!(result.is_exact(), "{:?}", result.verdict);
    let profile = stats.profile().expect("profile recorded");
    assert_eq!(profile.par_workers, 4);
    assert!(profile.rounds >= 1);
    assert!(profile.frontier_peak >= 1);
    // Every merged step was drained from some frontier first.
    assert!(profile.frontier_total >= result.steps);
    assert!(profile.par_groups >= profile.rounds);
}

#[test]
fn panic_in_frontier_task_is_structured_not_a_hang() {
    // The same injected fault must produce the same structured failure
    // at every worker count: the panic happens speculatively on a
    // worker, but is re-raised at its deterministic merge position.
    let prog = corpus::fig2_exchange();
    let outcome_at = |par: usize| {
        let config = AnalysisConfig::builder()
            .intra_jobs(par)
            .panic_at_step(5)
            .build()
            .expect("valid config");
        let request = AnalysisRequest::builder()
            .name("poisoned")
            .program(prog.program.clone())
            .config(config)
            .build()
            .expect("valid request");
        request.execute().outcome
    };
    let JobOutcome::Panicked { message: base } = outcome_at(1) else {
        panic!("sequential panic_at_step did not surface as Panicked");
    };
    assert_eq!(base, "injected engine fault at step 5");
    for par in [2, 8] {
        match outcome_at(par) {
            JobOutcome::Panicked { message } => {
                assert_eq!(base, message, "panic message diverged at intra_jobs={par}");
            }
            other => panic!("intra_jobs={par}: expected Panicked, got {other:?}"),
        }
    }
}

#[test]
fn cancellation_fires_mid_round_within_the_polling_interval() {
    // A pre-cancelled token with a wide parallel frontier: the merge
    // loop polls the token every CANCEL_CHECK_STEPS merges, so the
    // engine must stop with ⊤/deadline instead of finishing (or
    // hanging in) the round.
    let token = CancelToken::new();
    token.cancel();
    let prog = corpus::mdcask_full();
    let config = AnalysisConfig::builder()
        .cancel_token(token)
        .intra_jobs(8)
        .build()
        .expect("valid config");
    let result = analyze(&prog.program, &config);
    assert!(matches!(
        result.verdict,
        Verdict::Top {
            reason: TopReason::Deadline
        }
    ));
    assert!(
        result.steps <= CANCEL_CHECK_STEPS,
        "stopped after {} steps, poll interval is {}",
        result.steps,
        CANCEL_CHECK_STEPS
    );
}
