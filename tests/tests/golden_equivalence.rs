//! Golden equivalence suite for the analysis engine: runs the full
//! corpus through both clients and compares a semantic snapshot —
//! verdict shape, matched site pairs (the static topology), pattern
//! classification, print facts, leaks and match-event kinds — against
//! `golden_corpus.txt`.
//!
//! The snapshot was captured from the String-keyed (`NsVar`-indexed)
//! constraint-graph representation and pins the interned `VarId`
//! representation to byte-identical results. To regenerate after an
//! *intentional* behavior change:
//!
//! ```text
//! GOLDEN_REGEN=1 cargo test -p integration-tests --test golden_equivalence
//! ```

use std::fmt::Write as _;

use mpl_core::{analyze, classify, AnalysisConfig, Client, StaticTopology, Verdict};
use mpl_lang::corpus;

/// Renders one corpus program under one client as stable text lines.
fn render_run(out: &mut String, name: &str, client: Client) {
    let prog = corpus::all().into_iter().find(|p| p.name == name).unwrap();
    let config = AnalysisConfig::builder()
        .client(client)
        .build()
        .expect("valid config");
    let result = analyze(&prog.program, &config);

    let verdict = match &result.verdict {
        Verdict::Exact => "exact".to_owned(),
        Verdict::Deadlock { blocked } => {
            let nodes: Vec<String> = blocked.iter().map(|(n, _)| n.to_string()).collect();
            format!("deadlock at [{}]", nodes.join(", "))
        }
        Verdict::Top { reason } => format!("top: {reason}"),
        other => format!("unexpected: {other:?}"),
    };
    let _ = writeln!(out, "{name} / {client:?}");
    let _ = writeln!(out, "  verdict: {verdict}");

    let topo = StaticTopology::from_result(&result);
    let pairs: Vec<String> = topo
        .site_pairs()
        .iter()
        .map(|(s, r)| format!("{s}->{r}"))
        .collect();
    let _ = writeln!(out, "  topology: [{}]", pairs.join(", "));
    let _ = writeln!(out, "  pattern: {}", classify(&result));

    let mut prints: Vec<String> = result
        .prints
        .iter()
        .map(|p| match p.value {
            Some(v) => format!("{}={v}", p.node),
            None => format!("{}=?", p.node),
        })
        .collect();
    prints.sort();
    let _ = writeln!(out, "  prints: [{}]", prints.join(", "));

    let mut leaks: Vec<String> = result.leaks.iter().map(|n| n.to_string()).collect();
    leaks.sort();
    let _ = writeln!(out, "  leaks: [{}]", leaks.join(", "));

    let mut kinds: Vec<String> = result
        .events
        .iter()
        .map(|e| match e.s_const {
            Some(c) => format!("{:?}(s={c})", e.kind),
            None => format!("{:?}", e.kind),
        })
        .collect();
    kinds.sort();
    let _ = writeln!(out, "  events: [{}]", kinds.join(", "));
}

fn render_all() -> String {
    let mut out = String::new();
    for prog in corpus::all() {
        for client in [Client::Simple, Client::Cartesian] {
            render_run(&mut out, prog.name, client);
        }
    }
    out
}

#[test]
fn corpus_results_match_golden_snapshot() {
    let actual = render_all();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_corpus.txt");
    if std::env::var("GOLDEN_REGEN").is_ok() {
        std::fs::write(path, &actual).expect("write golden file");
        return;
    }
    let expected = std::fs::read_to_string(path)
        .expect("golden_corpus.txt missing — run with GOLDEN_REGEN=1 to create it");
    if actual != expected {
        // Line-level diff for a readable failure.
        for (i, (a, e)) in actual.lines().zip(expected.lines()).enumerate() {
            if a != e {
                panic!(
                    "golden mismatch at line {}:\n  expected: {e}\n  actual:   {a}",
                    i + 1
                );
            }
        }
        panic!(
            "golden length mismatch: expected {} lines, got {}",
            expected.lines().count(),
            actual.lines().count()
        );
    }
}

/// The paper-figure expectations baked into DESIGN.md §4 (E1–E14 shapes)
/// must not drift: spot-check the headline counts independently of the
/// snapshot file.
#[test]
fn headline_shapes_hold() {
    let cases: &[(&str, Client, usize)] = &[
        ("fig2_exchange", Client::Simple, 2),
        ("fanout_broadcast", Client::Simple, 1),
        ("exchange_with_root", Client::Simple, 2),
        ("mdcask_full", Client::Simple, 3),
        ("const_relay", Client::Simple, 2),
        ("nas_cg_transpose_square", Client::Cartesian, 1),
    ];
    for &(name, client, want_matches) in cases {
        let prog = corpus::all().into_iter().find(|p| p.name == name).unwrap();
        let config = AnalysisConfig::builder()
            .client(client)
            .build()
            .expect("valid config");
        let result = analyze(&prog.program, &config);
        assert!(result.is_exact(), "{name}: {:?}", result.verdict);
        assert_eq!(result.matches.len(), want_matches, "{name}");
    }
}
