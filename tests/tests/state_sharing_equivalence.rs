//! E18 equivalence suite for the copy-on-write state layer: structural
//! sharing and fingerprints are pure optimizations, so they must never
//! change what the analysis computes.
//!
//! Three angles:
//! * the full corpus under both clients, analyzed twice — results must
//!   be identical run to run (in debug builds every fingerprint-equality
//!   fast path self-checks: a hit asserts structural equality, so this
//!   sweep exercises the dedup paths under live assertions);
//! * value semantics: mutating a cloned state never leaks into the
//!   original, while untouched components keep sharing one allocation;
//! * a seeded property test over random constraint-graph mutation
//!   sequences: the incrementally-maintained fingerprint always equals
//!   the from-scratch recomputation, equal build histories yield equal
//!   fingerprints, and fingerprint equality implies structural equality.

use mpl_cfg::{Cfg, CfgNodeId};
use mpl_core::{analyze_cfg, AnalysisConfig, AnalysisResult, AnalysisState, Client, Shared};
use mpl_domains::{ConstraintGraph, LinExpr, NsVar, PsetId};
use mpl_lang::corpus;
use mpl_rng::Rng64;

/// Strips the wall-clock-bearing closure stats so results from separate
/// runs compare on semantics alone.
fn sans_timing(mut r: AnalysisResult) -> AnalysisResult {
    r.closure_stats = Default::default();
    r
}

#[test]
fn corpus_results_are_identical_across_repeat_runs() {
    for prog in corpus::all() {
        let cfg = Cfg::build(&prog.program);
        for client in [Client::Simple, Client::Cartesian] {
            let config = AnalysisConfig::builder()
                .client(client)
                .build()
                .expect("valid config");
            let first = sans_timing(analyze_cfg(&cfg, &config));
            let second = sans_timing(analyze_cfg(&cfg, &config));
            assert_eq!(
                first, second,
                "analysis of {} under {client:?} is not reproducible",
                prog.name
            );
        }
    }
}

#[test]
fn cloned_state_mutations_stay_isolated() {
    let original = AnalysisState::initial(CfgNodeId(0), 2);
    let mut copy = original.clone();
    // A fresh clone is all sharing and compares equal through the
    // fingerprint fast path.
    assert!(Shared::ptr_eq(&copy.cg, &original.cg));
    assert!(Shared::ptr_eq(&copy.consts, &original.consts));
    assert!(copy.same_as(&original));
    assert_eq!(copy.fingerprint(), original.fingerprint());

    // Mutating the clone's graph unshares only the graph.
    let x = NsVar::pset(copy.psets[0].id, "x");
    copy.cg.assert_eq_const(&x, 7);
    assert!(!Shared::ptr_eq(&copy.cg, &original.cg));
    assert!(
        Shared::ptr_eq(&copy.consts, &original.consts),
        "consts were untouched"
    );
    assert!(!original.cg.has_var(x.clone()));
    assert_ne!(copy.fingerprint(), original.fingerprint());
    assert!(!copy.same_as(&original));

    // Reverting the mutation restores value equality (fingerprints
    // agree again even though the allocations stay distinct).
    copy.cg.remove_var(x);
    assert!(!Shared::ptr_eq(&copy.cg, &original.cg));
    assert!(copy.same_as(&original));
    assert_eq!(copy.fingerprint(), original.fingerprint());
}

fn pvar(i: usize) -> NsVar {
    NsVar::pset(PsetId(0), format!("v{i}"))
}

/// One random mutation against `g`; the same (rng, op) stream applied to
/// equal graphs must keep them equal.
fn mutate(g: &mut ConstraintGraph, rng: &mut Rng64, nvars: usize) {
    match rng.index(7) {
        0 => {
            let (i, j) = (rng.index(nvars), rng.index(nvars));
            g.assert_le(pvar(i), pvar(j), rng.i64_in(-8, 8));
        }
        1 => g.assert_eq_const(pvar(rng.index(nvars)), rng.i64_in(-16, 16)),
        2 => {
            let (i, j) = (rng.index(nvars), rng.index(nvars));
            let e = LinExpr::var_plus(pvar(j), rng.i64_in(-4, 4));
            g.assign(pvar(i), &e);
        }
        3 => g.havoc(pvar(rng.index(nvars))),
        4 => g.remove_var(pvar(rng.index(nvars))),
        5 => {
            g.ensure_var(pvar(rng.index(nvars)));
        }
        _ => g.close(),
    }
}

#[test]
fn fingerprint_tracks_every_mutation_sequence() {
    let mut rng = Rng64::seed_from_u64(0xE18);
    for case in 0..80 {
        let nvars = 2 + rng.index(6);
        let mut g = ConstraintGraph::new();
        let mut twin = ConstraintGraph::new();
        let mut ops = Rng64::seed_from_u64(0x5EED + case);
        let mut twin_ops = Rng64::seed_from_u64(0x5EED + case);
        for step in 0..40 {
            mutate(&mut g, &mut ops, nvars);
            mutate(&mut twin, &mut twin_ops, nvars);
            // The incrementally-maintained fingerprint never drifts from
            // the from-scratch recomputation…
            assert_eq!(
                g.fingerprint(),
                g.recomputed_fingerprint(),
                "fingerprint drifted at case {case} step {step}"
            );
            // …identical histories agree…
            assert_eq!(
                g.fingerprint(),
                twin.fingerprint(),
                "case {case} step {step}"
            );
            // …and fingerprint equality means structural equality.
            if g.fingerprint() == twin.fingerprint() {
                assert!(g.same_shape(&twin), "collision at case {case} step {step}");
            }
        }
    }
}

#[test]
fn fingerprint_equality_implies_structural_equality_across_histories() {
    // Graphs built by *different* mutation sequences: any fingerprint
    // agreement must come with structural agreement (a 64-bit collision
    // inside this tiny pool would be a mixer bug, not bad luck).
    let mut rng = Rng64::seed_from_u64(0xC0117);
    let mut pool: Vec<ConstraintGraph> = Vec::new();
    for _ in 0..60 {
        let mut g = ConstraintGraph::new();
        for _ in 0..rng.index(12) {
            mutate(&mut g, &mut rng, 4);
        }
        g.close();
        pool.push(g);
    }
    for a in &pool {
        for b in &pool {
            if a.fingerprint() == b.fingerprint() {
                assert!(
                    a.same_shape(b),
                    "fingerprint collision without structural equality"
                );
            }
        }
    }
}
