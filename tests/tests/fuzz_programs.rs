//! Randomized end-to-end soundness: generate structured MPL programs
//! (random local computation wrapped around randomly-parameterized
//! communication skeletons), then check that
//!
//! * the simulator completes and is schedule-oblivious,
//! * whenever the analysis answers "exact", its topology covers every
//!   concrete execution,
//! * exact verdicts never hide runtime leaks or deadlocks.

use mpl_cfg::Cfg;
use mpl_core::{analyze_cfg, AnalysisConfig, StaticTopology};
use mpl_lang::parse_program;
use mpl_sim::{Schedule, SimConfig, Simulator};
use proptest::prelude::*;

/// A random side-effect-free arithmetic expression over the given
/// variables plus `id`/`np` and literals. Divisors are non-zero literals.
fn arb_expr(vars: Vec<String>) -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        (-20i64..20).prop_map(|c| c.to_string()),
        Just("id".to_owned()),
        Just("np".to_owned()),
        proptest::sample::select(vars).prop_map(|v| v),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        (inner.clone(), prop_oneof![Just("+"), Just("-"), Just("*")], inner).prop_map(
            |(l, op, r)| format!("({l} {op} {r})"),
        )
    })
}

/// A prologue of chained assignments `v0 := e; v1 := e; ...`.
fn arb_prologue(n: usize) -> impl Strategy<Value = (String, Vec<String>)> {
    let mut strat: BoxedStrategy<(String, Vec<String>)> =
        Just((String::new(), vec!["seed".to_owned()]))
            .prop_map(|(s, v)| (format!("{s}seed := 1;\n"), v))
            .boxed();
    for i in 0..n {
        strat = strat
            .prop_flat_map(move |(src, vars)| {
                let name = format!("v{i}");
                let vars2 = vars.clone();
                arb_expr(vars).prop_map(move |e| {
                    let mut vs = vars2.clone();
                    vs.push(name.clone());
                    (format!("{src}{name} := {e};\n"), vs)
                })
            })
            .boxed();
    }
    strat
}

/// A communication skeleton template using `payload` as the sent value.
fn skeleton(kind: u8, payload: &str) -> String {
    match kind % 4 {
        0 => format!(
            "if id = 0 then\n  for i = 1 to np - 1 do\n    send {payload} -> i;\n  end\n\
             else\n  recv y <- 0;\n  print y;\nend\n"
        ),
        1 => format!(
            "if id = 0 then\n  for i = 1 to np - 1 do\n    recv y <- i;\n    print y;\n  end\n\
             else\n  send {payload} -> 0;\nend\n"
        ),
        2 => format!(
            "if id = 0 then\n  for i = 1 to np - 1 do\n    send {payload} -> i;\n    recv y <- i;\n  end\n\
             else\n  recv y <- 0;\n  send {payload} -> 0;\nend\n"
        ),
        _ => format!(
            "if id = 0 then\n  send {payload} -> 1;\nelse\n  if id = 1 then\n    recv y <- 0;\n    print y;\n  end\nend\n"
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_are_sound_and_oblivious(
        (prologue, vars) in arb_prologue(4),
        kind in 0u8..4,
        payload_idx in 0usize..4,
        np in 4u64..9,
        seed in 0u64..1000,
    ) {
        let payload = vars[payload_idx % vars.len()].clone();
        let src = format!("{prologue}{}", skeleton(kind, &payload));
        let program = parse_program(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let cfg = Cfg::build(&program);

        // Concrete baseline run.
        let base = Simulator::from_cfg(Cfg::build(&program), np)
            .run()
            .unwrap_or_else(|e| panic!("{e}\n{src}"));
        prop_assert!(base.is_complete(), "skeleton programs always complete:\n{src}");
        prop_assert!(base.leaks.is_empty());

        // Schedule independence.
        let alt = Simulator::from_cfg(Cfg::build(&program), np)
            .with_config(SimConfig { schedule: Schedule::Random { seed }, ..SimConfig::default() })
            .run()
            .unwrap();
        prop_assert_eq!(&base.stores, &alt.stores);
        prop_assert_eq!(&base.topology, &alt.topology);
        prop_assert_eq!(&base.clocks, &alt.clocks);

        // Analysis soundness (exact verdicts only promise coverage).
        let result = analyze_cfg(&cfg, &AnalysisConfig::default());
        if result.is_exact() {
            let topo = StaticTopology::from_result(&result);
            prop_assert!(
                topo.covers(&base.topology.site_pairs()),
                "static {:?} misses runtime {:?}\n{src}",
                topo.site_pairs(),
                base.topology.site_pairs()
            );
            prop_assert!(result.leaks.is_empty(), "exact verdict reported a leak on a leak-free program");
        }
    }

    /// Constant payloads must propagate to the receivers' prints whenever
    /// the prologue pins the payload to a constant.
    #[test]
    fn constant_payloads_propagate(c in -50i64..50, kind in 0u8..3) {
        let src = format!("x := {c};\n{}", skeleton(kind, "x"));
        let program = parse_program(&src).unwrap();
        let result = mpl_core::analyze(&program, &AnalysisConfig::default());
        prop_assert!(result.is_exact(), "{:?}\n{src}", result.verdict);
        for p in &result.prints {
            prop_assert_eq!(p.value, Some(c), "print fact {:?}\n{}", p, src);
        }
        // And the simulator agrees.
        let out = Simulator::new(&program, 5).run().unwrap();
        for prints in &out.prints {
            for v in prints {
                prop_assert_eq!(*v, c);
            }
        }
    }
}
