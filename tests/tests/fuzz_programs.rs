//! Randomized end-to-end soundness (seeded, in-tree RNG): generate
//! structured MPL programs (random local computation wrapped around
//! randomly-parameterized communication skeletons), then check that
//!
//! * the simulator completes and is schedule-oblivious,
//! * whenever the analysis answers "exact", its topology covers every
//!   concrete execution,
//! * exact verdicts never hide runtime leaks or deadlocks.

use mpl_cfg::Cfg;
use mpl_core::{analyze_cfg, AnalysisConfig, StaticTopology};
use mpl_lang::parse_program;
use mpl_rng::Rng64;
use mpl_sim::{Schedule, SimConfig, Simulator};

/// A random side-effect-free arithmetic expression over the given
/// variables plus `id`/`np` and literals.
fn gen_expr(rng: &mut Rng64, vars: &[String], depth: u32) -> String {
    if depth > 0 && rng.index(2) == 0 {
        let op = *rng.pick(&["+", "-", "*"]);
        let l = gen_expr(rng, vars, depth - 1);
        let r = gen_expr(rng, vars, depth - 1);
        return format!("({l} {op} {r})");
    }
    match rng.index(4) {
        0 => rng.i64_in(-20, 20).to_string(),
        1 => "id".to_owned(),
        2 => "np".to_owned(),
        _ => rng.pick(vars).clone(),
    }
}

/// A prologue of chained assignments `v0 := e; v1 := e; ...`.
fn gen_prologue(rng: &mut Rng64, n: usize) -> (String, Vec<String>) {
    let mut src = "seed := 1;\n".to_owned();
    let mut vars = vec!["seed".to_owned()];
    for i in 0..n {
        let name = format!("v{i}");
        let e = gen_expr(rng, &vars, 3);
        src.push_str(&format!("{name} := {e};\n"));
        vars.push(name);
    }
    (src, vars)
}

/// A communication skeleton template using `payload` as the sent value.
fn skeleton(kind: u8, payload: &str) -> String {
    match kind % 4 {
        0 => format!(
            "if id = 0 then\n  for i = 1 to np - 1 do\n    send {payload} -> i;\n  end\n\
             else\n  recv y <- 0;\n  print y;\nend\n"
        ),
        1 => format!(
            "if id = 0 then\n  for i = 1 to np - 1 do\n    recv y <- i;\n    print y;\n  end\n\
             else\n  send {payload} -> 0;\nend\n"
        ),
        2 => format!(
            "if id = 0 then\n  for i = 1 to np - 1 do\n    send {payload} -> i;\n    recv y <- i;\n  end\n\
             else\n  recv y <- 0;\n  send {payload} -> 0;\nend\n"
        ),
        _ => format!(
            "if id = 0 then\n  send {payload} -> 1;\nelse\n  if id = 1 then\n    recv y <- 0;\n    print y;\n  end\nend\n"
        ),
    }
}

#[test]
fn random_programs_are_sound_and_oblivious() {
    let mut rng = Rng64::seed_from_u64(0xF022);
    for _ in 0..48 {
        let (prologue, vars) = gen_prologue(&mut rng, 4);
        let kind = rng.index(4) as u8;
        let payload = rng.pick(&vars).clone();
        let np = rng.u64_in(4, 9);
        let seed = rng.u64_in(0, 1000);
        let src = format!("{prologue}{}", skeleton(kind, &payload));
        let program = parse_program(&src).unwrap_or_else(|e| panic!("{e}\n{src}"));
        let cfg = Cfg::build(&program);

        // Concrete baseline run.
        let base = Simulator::from_cfg(Cfg::build(&program), np)
            .run()
            .unwrap_or_else(|e| panic!("{e}\n{src}"));
        assert!(
            base.is_complete(),
            "skeleton programs always complete:\n{src}"
        );
        assert!(base.leaks.is_empty());

        // Schedule independence.
        let alt = Simulator::from_cfg(Cfg::build(&program), np)
            .with_config(SimConfig {
                schedule: Schedule::Random { seed },
                ..SimConfig::default()
            })
            .run()
            .unwrap();
        assert_eq!(&base.stores, &alt.stores);
        assert_eq!(&base.topology, &alt.topology);
        assert_eq!(&base.clocks, &alt.clocks);

        // Analysis soundness (exact verdicts only promise coverage).
        let result = analyze_cfg(&cfg, &AnalysisConfig::default());
        if result.is_exact() {
            let topo = StaticTopology::from_result(&result);
            assert!(
                topo.covers(&base.topology.site_pairs()),
                "static {:?} misses runtime {:?}\n{src}",
                topo.site_pairs(),
                base.topology.site_pairs()
            );
            assert!(
                result.leaks.is_empty(),
                "exact verdict reported a leak on a leak-free program"
            );
        }
    }
}

/// Constant payloads must propagate to the receivers' prints whenever the
/// prologue pins the payload to a constant.
#[test]
fn constant_payloads_propagate() {
    let mut rng = Rng64::seed_from_u64(0xF023);
    for _ in 0..48 {
        let c = rng.i64_in(-50, 50);
        let kind = rng.index(3) as u8;
        let src = format!("x := {c};\n{}", skeleton(kind, "x"));
        let program = parse_program(&src).unwrap();
        let result = mpl_core::analyze(&program, &AnalysisConfig::default());
        assert!(result.is_exact(), "{:?}\n{src}", result.verdict);
        for p in &result.prints {
            assert_eq!(p.value, Some(c), "print fact {p:?}\n{src}");
        }
        // And the simulator agrees.
        let out = Simulator::new(&program, 5).run().unwrap();
        for prints in &out.prints {
            for v in prints {
                assert_eq!(*v, c);
            }
        }
    }
}
