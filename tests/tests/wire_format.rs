//! Golden schema test for protocol v1: locks the NDJSON wire format
//! shared by `mpl analyze --json`, `mpl analyze-corpus --json`, and the
//! `mpl serve` daemon.
//!
//! Every record must (a) parse as strict single-line JSON, (b) carry
//! `"v":1` as its first key, (c) tag its shape with a `type`, and
//! (d) use only the pinned kebab-case vocabularies for verdicts,
//! outcomes, reasons, and error codes. Changing any of these is a
//! protocol version bump, not a refactor — this test is the tripwire.

use mpl_core::{
    json_escape, parse_json, AnalysisService, JsonValue, ServiceConfig, PROTOCOL_VERSION,
};
use mpl_lang::corpus;

const VERDICTS: &[&str] = &["exact", "deadlock", "top"];
const OUTCOMES: &[&str] = &["completed", "degraded", "timed-out", "panicked", "error"];
const TOP_REASONS: &[&str] = &[
    "step-budget",
    "pset-budget",
    "abstraction-loss",
    "match-failure",
    "split-failure",
    "non-uniform-condition",
    "split-depth-exceeded",
    "deadline",
];
const ERROR_CODES: &[&str] = &[
    "bad-json",
    "bad-request",
    "parse-error",
    "unknown-client",
    "missing-program",
    "bad-config",
    "line-too-long",
];
const REJECTION_CODES: &[&str] = &["queue-full", "quota-exceeded"];

fn kebab(s: &str) -> bool {
    !s.is_empty()
        && s.chars().all(|c| c.is_ascii_lowercase() || c == '-')
        && !s.starts_with('-')
        && !s.ends_with('-')
}

/// Parses one wire line, asserting the versioned-envelope invariants
/// every record shares, and returns (type, parsed object).
fn record(line: &str) -> (String, JsonValue) {
    let value = parse_json(line).unwrap_or_else(|e| panic!("unparseable wire line: {e}\n{line}"));
    assert!(
        line.starts_with(&format!("{{\"v\":{PROTOCOL_VERSION},\"type\":\"")),
        "record must lead with the version envelope: {line}"
    );
    assert_eq!(value.get("v").and_then(JsonValue::as_i64), Some(1));
    let ty = value
        .get("type")
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("missing `type`: {line}"))
        .to_owned();
    assert!(kebab(&ty), "`type` must be kebab-case: {line}");
    (ty, value)
}

fn str_field(value: &JsonValue, key: &str, line: &str) -> String {
    value
        .get(key)
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("missing string `{key}`: {line}"))
        .to_owned()
}

fn int_field(value: &JsonValue, key: &str, line: &str) -> i64 {
    value
        .get(key)
        .and_then(JsonValue::as_i64)
        .unwrap_or_else(|| panic!("missing integer `{key}`: {line}"))
}

/// Asserts the full program-record contract shared by `analyze --json`,
/// `analyze-corpus --json`, and served `analyze` responses.
fn check_program_record(line: &str) {
    let (ty, value) = record(line);
    assert_eq!(ty, "program", "{line}");
    let verdict = str_field(&value, "verdict", line);
    assert!(VERDICTS.contains(&verdict.as_str()), "{line}");
    let outcome = str_field(&value, "outcome", line);
    assert!(OUTCOMES.contains(&outcome.as_str()), "{line}");
    match value.get("reason") {
        Some(JsonValue::Null) => {}
        Some(JsonValue::Str(reason)) => {
            assert!(TOP_REASONS.contains(&reason.as_str()), "{line}")
        }
        other => panic!("`reason` must be null or a pinned code, got {other:?}: {line}"),
    }
    for key in ["matches", "leaks", "steps"] {
        assert!(int_field(&value, key, line) >= 0, "{line}");
    }
    assert!(
        matches!(value.get("topology"), Some(JsonValue::Array(_))),
        "{line}"
    );
}

#[test]
fn corpus_json_records_use_the_pinned_vocabularies() {
    let args: Vec<String> = ["analyze-corpus", "--json"]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let out = mpl_cli::run_command(&args, "").expect("corpus runs");
    let lines: Vec<&str> = out.text.lines().collect();
    assert_eq!(lines.len(), corpus::all().len() + 1);
    for line in &lines[..lines.len() - 1] {
        check_program_record(line);
    }
    let (ty, summary) = record(lines.last().unwrap());
    assert_eq!(ty, "summary");
    for key in [
        "programs",
        "exact",
        "deadlock",
        "top",
        "completed",
        "degraded",
        "timed_out",
        "panicked",
        "errors",
        "matches",
        "leaks",
        "steps",
        "full_closures",
        "incremental_closures",
    ] {
        assert!(
            int_field(&summary, key, lines.last().unwrap()) >= 0,
            "summary missing {key}"
        );
    }
}

#[test]
fn served_records_use_the_versioned_envelope() {
    let svc = AnalysisService::new(ServiceConfig::default());

    let (ty, _) = record(svc.handle_line("{\"op\":\"ping\"}").line());
    assert_eq!(ty, "pong");

    let analyze = format!(
        "{{\"op\":\"analyze\",\"name\":\"fig2\",\"program\":\"{}\"}}",
        json_escape(&corpus::fig2_exchange().source)
    );
    let reply = svc.handle_line(&analyze);
    check_program_record(reply.line());

    let stats_line = svc.handle_line("{\"op\":\"stats\"}");
    let (ty, stats) = record(stats_line.line());
    assert_eq!(ty, "stats");
    for key in [
        "hits",
        "misses",
        "evictions",
        "collisions",
        "entries",
        "cache_capacity",
        "in_flight",
        "queue_capacity",
        "admitted",
        "rejected",
        "invalid",
        "coalesced",
        "quota_rejected",
        "quota_clients",
        "oversize",
        "replayed",
        "journal_appends",
        "compactions",
        "journal_errors",
    ] {
        assert!(
            int_field(&stats, key, stats_line.line()) >= 0,
            "stats missing {key}"
        );
    }

    // The shutdown summary reuses the stats schema under its own tag.
    let (ty, _) = record(&svc.shutdown_summary_line());
    assert_eq!(ty, "shutdown-summary");
    let (ty, shutdown) = record(svc.handle_line("{\"op\":\"shutdown\"}").line());
    assert_eq!(ty, "shutdown");
    // The shutdown reply names its mode, from the pinned pair.
    let mode = str_field(&shutdown, "mode", "shutdown record");
    assert!(["abort", "drain"].contains(&mode.as_str()), "{mode}");
}

#[test]
fn error_and_rejection_codes_are_pinned_kebab_case() {
    let svc = AnalysisService::new(ServiceConfig {
        max_in_flight: 1,
        ..ServiceConfig::default()
    });
    let failures = [
        ("not json", "bad-json"),
        ("{\"program\":\"x := 1;\"}", "bad-request"),
        ("{\"op\":\"warp\"}", "bad-request"),
        ("{\"op\":\"analyze\"}", "bad-request"),
        ("{\"op\":\"analyze\",\"program\":\"x := ;\"}", "parse-error"),
        (
            "{\"op\":\"analyze\",\"program\":\"x := 1;\",\"client\":\"quantum\"}",
            "unknown-client",
        ),
        (
            "{\"op\":\"analyze\",\"program\":\"x := 1;\",\"max_steps\":0}",
            "bad-config",
        ),
    ];
    for (request, expected) in failures {
        let reply = svc.handle_line(request);
        let (ty, value) = record(reply.line());
        assert_eq!(ty, "error", "{request}");
        let code = str_field(&value, "code", reply.line());
        assert_eq!(code, expected, "{request}");
        assert!(kebab(&code), "{request}");
        assert!(ERROR_CODES.contains(&code.as_str()), "{request}");
        str_field(&value, "message", reply.line());
    }

    // An oversized request line is also a pinned error code.
    let oversize = svc.oversize_reply(4096);
    let (ty, value) = record(&oversize);
    assert_eq!(ty, "error");
    assert_eq!(str_field(&value, "code", &oversize), "line-too-long");
    assert!(ERROR_CODES.contains(&"line-too-long"));

    // Backpressure: a saturated gate answers `rejected`, also versioned.
    let held = svc.gate().try_admit().expect("gate starts empty");
    let reply = svc.handle_line("{\"op\":\"analyze\",\"program\":\"x := 1;\"}");
    let (ty, value) = record(reply.line());
    assert_eq!(ty, "rejected");
    let code = str_field(&value, "code", reply.line());
    assert_eq!(code, "queue-full");
    assert!(REJECTION_CODES.contains(&code.as_str()));
    assert_eq!(int_field(&value, "capacity", reply.line()), 1);
    drop(held);

    // Quota exhaustion: `rejected` with the pinned code and retry hint.
    let svc = AnalysisService::new(ServiceConfig {
        quota: Some(mpl_core::QuotaPolicy {
            rate_per_sec: 1,
            burst: 1,
        }),
        ..ServiceConfig::default()
    });
    let analyze = "{\"op\":\"analyze\",\"program\":\"x := 1;\"}";
    let _ = svc.handle_line(analyze);
    let reply = svc.handle_line(analyze);
    let (ty, value) = record(reply.line());
    assert_eq!(ty, "rejected");
    let code = str_field(&value, "code", reply.line());
    assert_eq!(code, "quota-exceeded");
    assert!(REJECTION_CODES.contains(&code.as_str()));
    assert!(int_field(&value, "retry_after_ms", reply.line()) > 0);
    str_field(&value, "client", reply.line());
}
