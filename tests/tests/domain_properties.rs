//! Property tests on the abstract domains: the constraint graph's
//! incremental closure agrees with the full O(n³) closure, lattice
//! operations satisfy their laws, and HSM div/mod agree with concrete
//! integer arithmetic on random inputs.

use std::collections::BTreeMap;

use mpl_domains::{ConstraintGraph, LinExpr, NsVar, PsetId};
use mpl_hsm::{AssumptionCtx, Hsm, SymPoly};
use proptest::prelude::*;

fn var(i: usize) -> NsVar {
    NsVar::pset(PsetId(0), format!("v{i}"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Incremental closure (assert_le on a closed DBM) computes exactly
    /// the same bounds as batch insertion plus one full closure.
    #[test]
    fn incremental_closure_agrees_with_full(
        edges in proptest::collection::vec((0usize..5, 0usize..5, -10i64..10), 1..12)
    ) {
        let mut incr = ConstraintGraph::new();
        for &(x, y, c) in &edges {
            if x != y {
                incr.assert_le(&var(x), &var(y), c);
            }
        }
        let mut full = ConstraintGraph::new();
        // Insert without intermediate closure, then close once.
        for &(x, y, c) in &edges {
            if x != y {
                full.assert_le(&var(x), &var(y), c);
            }
        }
        full.close();
        prop_assert_eq!(incr.is_bottom(), full.is_bottom());
        if !incr.is_bottom() {
            for x in 0..5 {
                for y in 0..5 {
                    prop_assert_eq!(
                        incr.le_bound(&var(x), &var(y)),
                        full.le_bound(&var(x), &var(y)),
                        "bound {} -> {}", x, y
                    );
                }
            }
        }
    }

    /// join is an upper bound: both inputs entail the join.
    #[test]
    fn join_is_upper_bound(
        e1 in proptest::collection::vec((0usize..4, 0usize..4, -8i64..8), 1..8),
        e2 in proptest::collection::vec((0usize..4, 0usize..4, -8i64..8), 1..8),
    ) {
        let build = |edges: &[(usize, usize, i64)]| {
            let mut g = ConstraintGraph::new();
            for &(x, y, c) in edges {
                if x != y {
                    g.assert_le(&var(x), &var(y), c);
                }
            }
            // Ensure all vars exist so the join sees a common carrier.
            for i in 0..4 {
                g.ensure_var(&var(i));
            }
            g
        };
        let a = build(&e1);
        let b = build(&e2);
        let j = a.join(&b);
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        prop_assert!(a2.entails(&j), "a does not entail join");
        prop_assert!(b2.entails(&j), "b does not entail join");
    }

    /// Widening is an upper bound of the older state and stabilizes:
    /// widen(w, w) adds nothing.
    #[test]
    fn widen_is_stable(
        e1 in proptest::collection::vec((0usize..4, 0usize..4, -8i64..8), 1..8),
        e2 in proptest::collection::vec((0usize..4, 0usize..4, -8i64..8), 1..8),
    ) {
        let build = |edges: &[(usize, usize, i64)]| {
            let mut g = ConstraintGraph::new();
            for &(x, y, c) in edges {
                if x != y {
                    g.assert_le(&var(x), &var(y), c);
                }
            }
            for i in 0..4 {
                g.ensure_var(&var(i));
            }
            g
        };
        let a = build(&e1);
        let b = build(&e2);
        if a.is_bottom() || b.is_bottom() {
            return Ok(());
        }
        let w = a.widen(&b);
        let mut a2 = a.clone();
        prop_assert!(a2.entails(&w));
        let w2 = w.widen(&w);
        let mut wa = w.clone();
        let mut wb = w2.clone();
        prop_assert!(wa.entails(&w2) && wb.entails(&w));
    }

    /// HSM division and modulus agree with floor/Euclidean arithmetic on
    /// every element, whenever the (partial) operations succeed.
    #[test]
    fn hsm_div_mod_agree_with_arithmetic(
        base in 0i64..50,
        r1 in 1i64..6,
        s1 in 0i64..8,
        r2 in 1i64..5,
        s2 in 0i64..20,
        q in 1i64..12,
    ) {
        let ctx = AssumptionCtx::new();
        let h = Hsm::leaf(SymPoly::constant(base))
            .repeat(SymPoly::constant(r1), SymPoly::constant(s1))
            .repeat(SymPoly::constant(r2), SymPoly::constant(s2));
        let vals = h.concretize(&BTreeMap::new()).expect("concrete");
        if let Ok(d) = h.div(&SymPoly::constant(q), &ctx) {
            let got = d.concretize(&BTreeMap::new()).expect("concrete div");
            let want: Vec<i64> = vals.iter().map(|v| v.div_euclid(q)).collect();
            prop_assert_eq!(got, want, "div {} by {}", h, q);
        }
        if let Ok(m) = h.modulo(&SymPoly::constant(q), &ctx) {
            let got = m.concretize(&BTreeMap::new()).expect("concrete mod");
            let want: Vec<i64> = vals.iter().map(|v| v.rem_euclid(q)).collect();
            prop_assert_eq!(got, want, "mod {} by {}", h, q);
        }
    }

    /// HSM addition, when it succeeds, is element-wise addition.
    #[test]
    fn hsm_add_is_elementwise(
        b1 in -20i64..20, b2 in -20i64..20,
        r in 1i64..8, s1 in -5i64..5, s2 in -5i64..5,
    ) {
        let ctx = AssumptionCtx::new();
        let a = Hsm::leaf(SymPoly::constant(b1)).repeat(SymPoly::constant(r), SymPoly::constant(s1));
        let b = Hsm::leaf(SymPoly::constant(b2)).repeat(SymPoly::constant(r), SymPoly::constant(s2));
        let sum = a.add(&b, &ctx).expect("same shape adds");
        let va = a.concretize(&BTreeMap::new()).unwrap();
        let vb = b.concretize(&BTreeMap::new()).unwrap();
        let vs = sum.concretize(&BTreeMap::new()).unwrap();
        let want: Vec<i64> = va.iter().zip(&vb).map(|(x, y)| x + y).collect();
        prop_assert_eq!(vs, want);
    }

    /// seq_eq is sound: canonical equality implies identical concrete
    /// sequences (checked via reshape pairs).
    #[test]
    fn seq_canonical_preserves_sequence(
        base in -10i64..10, r1 in 1i64..5, r2 in 1i64..5, s in 1i64..6,
    ) {
        let ctx = AssumptionCtx::new();
        let flat = Hsm::leaf(SymPoly::constant(base))
            .repeat(SymPoly::constant(r1 * r2), SymPoly::constant(s));
        let nested = Hsm::leaf(SymPoly::constant(base))
            .repeat(SymPoly::constant(r1), SymPoly::constant(s))
            .repeat(SymPoly::constant(r2), SymPoly::constant(r1 * s));
        prop_assert!(flat.seq_eq(&nested, &ctx));
        prop_assert_eq!(
            flat.concretize(&BTreeMap::new()),
            nested.concretize(&BTreeMap::new())
        );
    }

    /// Range emptiness answers are consistent with concrete instantiation
    /// of np.
    #[test]
    fn procrange_emptiness_sound(np in 1i64..20, lo in 0i64..6, hi_off in -3i64..3) {
        use mpl_procset::ProcRange;
        let mut cg = ConstraintGraph::new();
        cg.assert_eq_const(&NsVar::Np, np);
        let r = ProcRange::from_exprs(
            LinExpr::constant(lo),
            LinExpr::var_plus(NsVar::Np, hi_off),
        );
        let concrete_empty = lo > np + hi_off;
        match r.is_empty(&mut cg) {
            Some(b) => prop_assert_eq!(b, concrete_empty),
            None => {} // Unknown is always acceptable.
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// set_eq soundness: whenever the canonicalizer proves two concrete
    /// HSMs set-equal, their sorted concretizations are identical (and
    /// seq_eq implies elementwise equality).
    #[test]
    fn hsm_equalities_are_sound(
        base in -10i64..10,
        r1 in 1i64..5, s1 in 0i64..6,
        r2 in 1i64..5, s2 in 0i64..20,
        swap in proptest::bool::ANY,
    ) {
        let ctx = AssumptionCtx::new();
        let a = Hsm::leaf(SymPoly::constant(base))
            .repeat(SymPoly::constant(r1), SymPoly::constant(s1))
            .repeat(SymPoly::constant(r2), SymPoly::constant(s2));
        let b = if swap {
            Hsm::leaf(SymPoly::constant(base))
                .repeat(SymPoly::constant(r2), SymPoly::constant(s2))
                .repeat(SymPoly::constant(r1), SymPoly::constant(s1))
        } else {
            a.clone()
        };
        let va = a.concretize(&BTreeMap::new()).unwrap();
        let vb = b.concretize(&BTreeMap::new()).unwrap();
        if a.seq_eq(&b, &ctx) {
            prop_assert_eq!(&va, &vb, "seq_eq but sequences differ");
        }
        if a.set_eq(&b, &ctx) {
            let mut sa = va.clone();
            let mut sb = vb.clone();
            sa.sort_unstable();
            sb.sort_unstable();
            prop_assert_eq!(sa, sb, "set_eq but multisets differ");
        }
    }

    /// subtract soundness on concrete ranges: the matched part plus the
    /// remainders partition the original range.
    #[test]
    fn procrange_subtract_partitions(
        lo in 0i64..10,
        len in 1i64..12,
        sub_off in 0i64..12,
        sub_len in 1i64..12,
    ) {
        use mpl_procset::{ProcRange, SubtractOutcome};
        let hi = lo + len - 1;
        let sub_lo = lo + (sub_off % len);
        let sub_hi = (sub_lo + sub_len - 1).min(hi);
        let mut cg = ConstraintGraph::new();
        let range = ProcRange::from_exprs(LinExpr::constant(lo), LinExpr::constant(hi));
        let sub = ProcRange::from_exprs(LinExpr::constant(sub_lo), LinExpr::constant(sub_hi));
        let Some(outcome) = range.subtract(&mut cg, &sub) else {
            // Concrete contained non-empty subtrahends must succeed.
            return Err(TestCaseError::fail(format!(
                "subtract failed on [{lo}..{hi}] - [{sub_lo}..{sub_hi}]"
            )));
        };
        let concrete = |r: &ProcRange| -> Vec<i64> {
            let mut cg2 = ConstraintGraph::new();
            let a = r.lb.exprs().iter().find_map(|e| cg2.eval_expr(e)).unwrap();
            let b = r.ub.exprs().iter().find_map(|e| cg2.eval_expr(e)).unwrap();
            (a..=b).collect()
        };
        let mut rebuilt: Vec<i64> = (sub_lo..=sub_hi).collect();
        match outcome {
            SubtractOutcome::Empty => {}
            SubtractOutcome::One(r) => rebuilt.extend(concrete(&r)),
            SubtractOutcome::Two(r1, r2) => {
                rebuilt.extend(concrete(&r1));
                rebuilt.extend(concrete(&r2));
            }
        }
        rebuilt.sort_unstable();
        let want: Vec<i64> = (lo..=hi).collect();
        prop_assert_eq!(rebuilt, want);
    }

    /// Constant-bound comparisons agree with integer ordering.
    #[test]
    fn bound_comparisons_are_consistent(a in -30i64..30, b in -30i64..30) {
        use mpl_procset::Bound;
        let mut cg = ConstraintGraph::new();
        let ba = Bound::constant(a);
        let bb = Bound::constant(b);
        prop_assert_eq!(ba.provably_le(&mut cg, &bb), a <= b);
        prop_assert_eq!(ba.provably_lt(&mut cg, &bb), a < b);
        prop_assert_eq!(ba.provably_eq(&mut cg, &bb), a == b);
    }
}
