//! Randomized property tests on the abstract domains (seeded, in-tree
//! RNG): the constraint graph's incremental closure agrees with the full
//! O(n³) closure, lattice operations satisfy their laws, and HSM div/mod
//! agree with concrete integer arithmetic on random inputs.

use std::collections::BTreeMap;

use mpl_domains::{ConstraintGraph, LinExpr, NsVar, PsetId};
use mpl_hsm::{AssumptionCtx, Hsm, SymPoly};
use mpl_rng::Rng64;

fn var(i: usize) -> NsVar {
    NsVar::pset(PsetId(0), format!("v{i}"))
}

fn random_edges(
    rng: &mut Rng64,
    nvars: usize,
    bound: i64,
    max_len: usize,
) -> Vec<(usize, usize, i64)> {
    let len = 1 + rng.index(max_len);
    (0..len)
        .map(|_| {
            (
                rng.index(nvars),
                rng.index(nvars),
                rng.i64_in(-bound, bound),
            )
        })
        .collect()
}

fn build(edges: &[(usize, usize, i64)], carrier: usize) -> ConstraintGraph {
    let mut g = ConstraintGraph::new();
    for &(x, y, c) in edges {
        if x != y {
            g.assert_le(var(x), var(y), c);
        }
    }
    // Ensure all vars exist so lattice ops see a common carrier.
    for i in 0..carrier {
        g.ensure_var(var(i));
    }
    g
}

/// Incremental closure (assert_le on a closed DBM) computes exactly the
/// same bounds as batch insertion plus one full closure.
#[test]
fn incremental_closure_agrees_with_full() {
    let mut rng = Rng64::seed_from_u64(11);
    for case in 0..64 {
        let edges = random_edges(&mut rng, 5, 10, 11);
        let mut incr = ConstraintGraph::new();
        for &(x, y, c) in &edges {
            if x != y {
                incr.assert_le(var(x), var(y), c);
                // Query after every insertion to exercise the
                // incremental path rather than one batch closure.
                let _ = incr.is_bottom();
                let _ = incr.le_bound(var(x), var(y));
            }
        }
        let mut full = ConstraintGraph::new();
        // Insert without intermediate closure, then close once.
        for &(x, y, c) in &edges {
            if x != y {
                full.assert_le(var(x), var(y), c);
            }
        }
        full.close();
        assert_eq!(incr.is_bottom(), full.is_bottom(), "case {case}: {edges:?}");
        if !incr.is_bottom() {
            for x in 0..5 {
                for y in 0..5 {
                    assert_eq!(
                        incr.le_bound(var(x), var(y)),
                        full.le_bound(var(x), var(y)),
                        "case {case}: bound {x} -> {y} of {edges:?}"
                    );
                }
            }
        }
    }
}

/// join is an upper bound: both inputs entail the join.
#[test]
fn join_is_upper_bound() {
    let mut rng = Rng64::seed_from_u64(12);
    for case in 0..64 {
        let e1 = random_edges(&mut rng, 4, 8, 7);
        let e2 = random_edges(&mut rng, 4, 8, 7);
        let a = build(&e1, 4);
        let b = build(&e2, 4);
        let j = a.join(&b);
        let mut a2 = a.clone();
        let mut b2 = b.clone();
        assert!(a2.entails(&j), "case {case}: a does not entail join");
        assert!(b2.entails(&j), "case {case}: b does not entail join");
    }
}

/// Widening is an upper bound of the older state and stabilizes:
/// widen(w, w) adds nothing.
#[test]
fn widen_is_stable() {
    let mut rng = Rng64::seed_from_u64(13);
    for case in 0..64 {
        let e1 = random_edges(&mut rng, 4, 8, 7);
        let e2 = random_edges(&mut rng, 4, 8, 7);
        let a = build(&e1, 4);
        let b = build(&e2, 4);
        if a.is_bottom() || b.is_bottom() {
            continue;
        }
        let w = a.widen(&b);
        let mut a2 = a.clone();
        assert!(a2.entails(&w), "case {case}");
        let w2 = w.widen(&w);
        let mut wa = w.clone();
        let mut wb = w2.clone();
        assert!(wa.entails(&w2) && wb.entails(&w), "case {case}");
    }
}

/// HSM division and modulus agree with floor/Euclidean arithmetic on
/// every element, whenever the (partial) operations succeed.
#[test]
fn hsm_div_mod_agree_with_arithmetic() {
    let mut rng = Rng64::seed_from_u64(14);
    for _ in 0..64 {
        let base = rng.i64_in(0, 50);
        let r1 = rng.i64_in(1, 6);
        let s1 = rng.i64_in(0, 8);
        let r2 = rng.i64_in(1, 5);
        let s2 = rng.i64_in(0, 20);
        let q = rng.i64_in(1, 12);
        let ctx = AssumptionCtx::new();
        let h = Hsm::leaf(SymPoly::constant(base))
            .repeat(SymPoly::constant(r1), SymPoly::constant(s1))
            .repeat(SymPoly::constant(r2), SymPoly::constant(s2));
        let vals = h.concretize(&BTreeMap::new()).expect("concrete");
        if let Ok(d) = h.div(&SymPoly::constant(q), &ctx) {
            let got = d.concretize(&BTreeMap::new()).expect("concrete div");
            let want: Vec<i64> = vals.iter().map(|v| v.div_euclid(q)).collect();
            assert_eq!(got, want, "div {h} by {q}");
        }
        if let Ok(m) = h.modulo(&SymPoly::constant(q), &ctx) {
            let got = m.concretize(&BTreeMap::new()).expect("concrete mod");
            let want: Vec<i64> = vals.iter().map(|v| v.rem_euclid(q)).collect();
            assert_eq!(got, want, "mod {h} by {q}");
        }
    }
}

/// HSM addition, when it succeeds, is element-wise addition.
#[test]
fn hsm_add_is_elementwise() {
    let mut rng = Rng64::seed_from_u64(15);
    for _ in 0..64 {
        let b1 = rng.i64_in(-20, 20);
        let b2 = rng.i64_in(-20, 20);
        let r = rng.i64_in(1, 8);
        let s1 = rng.i64_in(-5, 5);
        let s2 = rng.i64_in(-5, 5);
        let ctx = AssumptionCtx::new();
        let a =
            Hsm::leaf(SymPoly::constant(b1)).repeat(SymPoly::constant(r), SymPoly::constant(s1));
        let b =
            Hsm::leaf(SymPoly::constant(b2)).repeat(SymPoly::constant(r), SymPoly::constant(s2));
        let sum = a.add(&b, &ctx).expect("same shape adds");
        let va = a.concretize(&BTreeMap::new()).unwrap();
        let vb = b.concretize(&BTreeMap::new()).unwrap();
        let vs = sum.concretize(&BTreeMap::new()).unwrap();
        let want: Vec<i64> = va.iter().zip(&vb).map(|(x, y)| x + y).collect();
        assert_eq!(vs, want);
    }
}

/// seq_eq is sound: canonical equality implies identical concrete
/// sequences (checked via reshape pairs).
#[test]
fn seq_canonical_preserves_sequence() {
    let mut rng = Rng64::seed_from_u64(16);
    for _ in 0..64 {
        let base = rng.i64_in(-10, 10);
        let r1 = rng.i64_in(1, 5);
        let r2 = rng.i64_in(1, 5);
        let s = rng.i64_in(1, 6);
        let ctx = AssumptionCtx::new();
        let flat = Hsm::leaf(SymPoly::constant(base))
            .repeat(SymPoly::constant(r1 * r2), SymPoly::constant(s));
        let nested = Hsm::leaf(SymPoly::constant(base))
            .repeat(SymPoly::constant(r1), SymPoly::constant(s))
            .repeat(SymPoly::constant(r2), SymPoly::constant(r1 * s));
        assert!(flat.seq_eq(&nested, &ctx));
        assert_eq!(
            flat.concretize(&BTreeMap::new()),
            nested.concretize(&BTreeMap::new())
        );
    }
}

/// Range emptiness answers are consistent with concrete instantiation of
/// np.
#[test]
fn procrange_emptiness_sound() {
    use mpl_procset::ProcRange;
    let mut rng = Rng64::seed_from_u64(17);
    for _ in 0..64 {
        let np = rng.i64_in(1, 20);
        let lo = rng.i64_in(0, 6);
        let hi_off = rng.i64_in(-3, 3);
        let mut cg = ConstraintGraph::new();
        cg.assert_eq_const(&NsVar::Np, np);
        let r = ProcRange::from_exprs(LinExpr::constant(lo), LinExpr::var_plus(NsVar::Np, hi_off));
        let concrete_empty = lo > np + hi_off;
        // Unknown (`None`) is always acceptable.
        if let Some(b) = r.is_empty(&mut cg) {
            assert_eq!(b, concrete_empty, "np={np} lo={lo} hi_off={hi_off}");
        }
    }
}

/// set_eq soundness: whenever the canonicalizer proves two concrete HSMs
/// set-equal, their sorted concretizations are identical (and seq_eq
/// implies elementwise equality).
#[test]
fn hsm_equalities_are_sound() {
    let mut rng = Rng64::seed_from_u64(18);
    for _ in 0..64 {
        let base = rng.i64_in(-10, 10);
        let r1 = rng.i64_in(1, 5);
        let s1 = rng.i64_in(0, 6);
        let r2 = rng.i64_in(1, 5);
        let s2 = rng.i64_in(0, 20);
        let swap = rng.flip();
        let ctx = AssumptionCtx::new();
        let a = Hsm::leaf(SymPoly::constant(base))
            .repeat(SymPoly::constant(r1), SymPoly::constant(s1))
            .repeat(SymPoly::constant(r2), SymPoly::constant(s2));
        let b = if swap {
            Hsm::leaf(SymPoly::constant(base))
                .repeat(SymPoly::constant(r2), SymPoly::constant(s2))
                .repeat(SymPoly::constant(r1), SymPoly::constant(s1))
        } else {
            a.clone()
        };
        let va = a.concretize(&BTreeMap::new()).unwrap();
        let vb = b.concretize(&BTreeMap::new()).unwrap();
        if a.seq_eq(&b, &ctx) {
            assert_eq!(&va, &vb, "seq_eq but sequences differ");
        }
        if a.set_eq(&b, &ctx) {
            let mut sa = va.clone();
            let mut sb = vb.clone();
            sa.sort_unstable();
            sb.sort_unstable();
            assert_eq!(sa, sb, "set_eq but multisets differ");
        }
    }
}

/// subtract soundness on concrete ranges: the matched part plus the
/// remainders partition the original range.
#[test]
fn procrange_subtract_partitions() {
    use mpl_procset::{ProcRange, SubtractOutcome};
    let mut rng = Rng64::seed_from_u64(19);
    for _ in 0..64 {
        let lo = rng.i64_in(0, 10);
        let len = rng.i64_in(1, 12);
        let sub_off = rng.i64_in(0, 12);
        let sub_len = rng.i64_in(1, 12);
        let hi = lo + len - 1;
        let sub_lo = lo + (sub_off % len);
        let sub_hi = (sub_lo + sub_len - 1).min(hi);
        let mut cg = ConstraintGraph::new();
        let range = ProcRange::from_exprs(LinExpr::constant(lo), LinExpr::constant(hi));
        let sub = ProcRange::from_exprs(LinExpr::constant(sub_lo), LinExpr::constant(sub_hi));
        let Some(outcome) = range.subtract(&mut cg, &sub) else {
            // Concrete contained non-empty subtrahends must succeed.
            panic!("subtract failed on [{lo}..{hi}] - [{sub_lo}..{sub_hi}]");
        };
        let concrete = |r: &ProcRange| -> Vec<i64> {
            let mut cg2 = ConstraintGraph::new();
            let a = r.lb.exprs().iter().find_map(|e| cg2.eval_expr(e)).unwrap();
            let b = r.ub.exprs().iter().find_map(|e| cg2.eval_expr(e)).unwrap();
            (a..=b).collect()
        };
        let mut rebuilt: Vec<i64> = (sub_lo..=sub_hi).collect();
        match outcome {
            SubtractOutcome::Empty => {}
            SubtractOutcome::One(r) => rebuilt.extend(concrete(&r)),
            SubtractOutcome::Two(r1, r2) => {
                rebuilt.extend(concrete(&r1));
                rebuilt.extend(concrete(&r2));
            }
        }
        rebuilt.sort_unstable();
        let want: Vec<i64> = (lo..=hi).collect();
        assert_eq!(rebuilt, want);
    }
}

/// Constant-bound comparisons agree with integer ordering.
#[test]
fn bound_comparisons_are_consistent() {
    use mpl_procset::Bound;
    let mut rng = Rng64::seed_from_u64(20);
    for _ in 0..64 {
        let a = rng.i64_in(-30, 30);
        let b = rng.i64_in(-30, 30);
        let mut cg = ConstraintGraph::new();
        let ba = Bound::constant(a);
        let bb = Bound::constant(b);
        assert_eq!(ba.provably_le(&mut cg, &bb), a <= b);
        assert_eq!(ba.provably_lt(&mut cg, &bb), a < b);
        assert_eq!(ba.provably_eq(&mut cg, &bb), a == b);
    }
}
