//! Property test for cache-journal torn-tail recovery: a `kill -9` can
//! truncate the journal at *any* byte boundary, so replay must be total
//! — for every possible truncation point it recovers the longest valid
//! record prefix, never panics, and never yields a partial record.

use mpl_core::{CacheJournal, JournalEntry};

/// Builds a realistic journal through the public API (open + append in
/// a scratch dir) and returns its raw bytes plus the entries written.
fn build_journal(entries: &[(u64, String, String)]) -> Vec<u8> {
    let dir = std::env::temp_dir().join(format!(
        "mpl-journal-prop-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let (mut journal, _) = CacheJournal::open(&dir).expect("open scratch journal");
    for (key, check, body) in entries {
        journal.append(*key, check, body).expect("append");
    }
    let data = std::fs::read(journal.path()).expect("read journal bytes");
    drop(journal);
    let _ = std::fs::remove_dir_all(&dir);
    data
}

fn sample_entries() -> Vec<(u64, String, String)> {
    vec![
        (
            0x1111_2222_3333_4444,
            "client=simple;min_np=2;program=x := 1;".to_owned(),
            "{\"v\":1,\"type\":\"program\",\"verdict\":\"exact\"}".to_owned(),
        ),
        (
            u64::MAX,
            "check with \"quotes\" and \\ backslashes".to_owned(),
            "{\"v\":1,\"body\":2}".to_owned(),
        ),
        (0, String::new(), String::new()),
        (
            42,
            "newline\nin the middle".to_owned(),
            "body with unicode: héllo ∀x".to_owned(),
        ),
    ]
}

#[test]
fn replay_recovers_longest_valid_prefix_at_every_truncation_offset() {
    let entries = sample_entries();
    let data = build_journal(&entries);
    // Record boundaries: byte offsets right after each newline.
    let mut boundaries = vec![0usize];
    for (i, &b) in data.iter().enumerate() {
        if b == b'\n' {
            boundaries.push(i + 1);
        }
    }
    assert_eq!(
        boundaries.len(),
        entries.len() + 1,
        "one newline per record"
    );

    for cut in 0..=data.len() {
        let truncated = &data[..cut];
        // Total: must not panic for any prefix.
        let replay = CacheJournal::replay_bytes(truncated);
        // The recovered prefix is exactly the complete records that fit.
        let complete = boundaries.iter().filter(|&&b| b > 0 && b <= cut).count();
        assert_eq!(
            replay.entries.len(),
            complete,
            "cut at {cut}: expected {complete} complete records"
        );
        assert_eq!(
            replay.valid_bytes, boundaries[complete] as u64,
            "cut at {cut}"
        );
        assert_eq!(
            replay.valid_bytes + replay.torn_bytes,
            cut as u64,
            "cut at {cut}: every byte kept or discarded"
        );
        // Recovered entries are bit-exact, never partial.
        for (entry, (key, check, body)) in replay.entries.iter().zip(&entries) {
            assert_eq!(
                entry,
                &JournalEntry {
                    key: *key,
                    check: check.clone(),
                    body: body.clone()
                }
            );
        }
    }
}

#[test]
fn replay_is_monotone_in_the_prefix() {
    // More bytes can only recover more records, never fewer, and the
    // recovered prefix of a longer cut extends the shorter one.
    let data = build_journal(&sample_entries());
    let mut last = 0usize;
    for cut in 0..=data.len() {
        let replay = CacheJournal::replay_bytes(&data[..cut]);
        assert!(
            replay.entries.len() >= last,
            "cut at {cut}: recovered {} after {last}",
            replay.entries.len()
        );
        last = replay.entries.len();
    }
    assert_eq!(last, sample_entries().len(), "full journal replays fully");
}

#[test]
fn corruption_at_every_offset_never_panics_and_never_fabricates() {
    // Flip one byte at every offset: replay must stay total, and any
    // record it does recover must be one that was actually written
    // (the checksum rejects mutated payloads; flips in JSON syntax or
    // structure are rejected by the parser).
    let entries = sample_entries();
    let data = build_journal(&entries);
    for offset in 0..data.len() {
        let mut mutated = data.clone();
        // 0x20 also covers framing damage: it turns `*` into a newline
        // and a newline into `*`, not just payload case-flips.
        mutated[offset] ^= 0x20;
        let replay = CacheJournal::replay_bytes(&mutated);
        for entry in &replay.entries {
            assert!(
                entries
                    .iter()
                    .any(|(k, c, b)| entry.key == *k && &entry.check == c && &entry.body == b),
                "offset {offset}: recovered a record that was never written: {entry:?}"
            );
        }
        assert!(replay.valid_bytes + replay.torn_bytes == mutated.len() as u64);
    }
}
