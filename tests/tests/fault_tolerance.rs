//! Fault tolerance of the batch runtime and the `analyze-corpus` CLI:
//! panicking jobs are isolated, deadlines end with a sound ⊤ within a
//! bounded number of worklist steps, the retry ladder degrades
//! deterministically, and the failure records themselves are
//! byte-identical for any worker count.

use std::time::Duration;

use mpl_core::engine::{analyze, AnalysisConfig, AnalysisResult};
use mpl_core::{
    BatchAnalyzer, BatchJob, BatchReport, Fault, JobOutcome, TopReason, Verdict, CANCEL_CHECK_STEPS,
};
use mpl_lang::corpus;
use mpl_runtime::{CancelToken, Pool};

/// The deterministic fields of a record, one line per record.
fn fingerprint(report: &BatchReport) -> Vec<String> {
    report
        .records
        .iter()
        .map(|rec| match &rec.result {
            Some(result) => format!(
                "{} [{}] verdict={:?} matches={:?} leaks={:?} steps={}",
                rec.name,
                rec.outcome.code(),
                result.verdict,
                result.matches,
                result.leaks,
                result.steps
            ),
            None => format!("{} [{}] {}", rec.name, rec.outcome.code(), rec.outcome),
        })
        .collect()
}

#[test]
fn pool_survives_panicking_jobs_and_preserves_order() {
    let pool = Pool::new(4);
    let jobs: Vec<u32> = (0..32).collect();
    let (results, _stats) = pool.run_ordered_isolated(jobs, |_, n| {
        assert!(n % 5 != 3, "job {n} refuses to run");
        n * 2
    });
    assert_eq!(results.len(), 32);
    for (i, slot) in results.iter().enumerate() {
        let n = i as u32;
        match slot {
            Ok(v) => {
                assert!(n % 5 != 3);
                assert_eq!(*v, n * 2);
            }
            Err(failure) => {
                assert_eq!(n % 5, 3, "job {n} should not have failed");
                assert!(failure.message.contains(&format!("job {n} refuses")));
            }
        }
    }
}

#[test]
fn cancelled_engine_stops_within_the_polling_interval() {
    // A pre-cancelled token: the engine must give up with ⊤/deadline
    // after at most one polling interval of worklist steps.
    let token = CancelToken::new();
    token.cancel();
    let prog = corpus::mdcask_full();
    let config = AnalysisConfig::builder()
        .cancel_token(token)
        .build()
        .expect("valid config");
    let result = analyze(&prog.program, &config);
    assert!(matches!(
        result.verdict,
        Verdict::Top {
            reason: TopReason::Deadline
        }
    ));
    assert!(
        result.steps <= CANCEL_CHECK_STEPS,
        "stopped after {} steps, poll interval is {}",
        result.steps,
        CANCEL_CHECK_STEPS
    );
}

#[test]
fn deadline_records_are_identical_across_worker_counts() {
    let report_at = |workers: usize| {
        let mut batch = BatchAnalyzer::new()
            .workers(workers)
            .timeout(Duration::from_millis(500));
        for prog in corpus::all() {
            batch.push(BatchJob::new(
                prog.name,
                prog.program,
                AnalysisConfig::default(),
            ));
        }
        // Two spinners exercise the deadline under contention.
        let spin = corpus::fig2_exchange();
        for name in ["spin_a", "spin_b"] {
            batch.push(
                BatchJob::new(name, spin.program.clone(), AnalysisConfig::default())
                    .with_fault(Fault::Spin),
            );
        }
        batch.run()
    };
    let seq = report_at(1);
    assert_eq!(seq.summary.timed_out, 2);
    for rec in &seq.records {
        if rec.outcome == JobOutcome::TimedOut {
            let result = rec.result.as_ref().expect("timed-out records carry ⊤");
            assert!(matches!(
                result.verdict,
                Verdict::Top {
                    reason: TopReason::Deadline
                }
            ));
            assert_eq!(result.steps, 0, "normalized ⊤ must not leak progress");
            assert!(result.matches.is_empty());
        }
    }
    let seq_fp = fingerprint(&seq);
    for workers in [4, 8] {
        assert_eq!(
            seq_fp,
            fingerprint(&report_at(workers)),
            "deadline records diverged at {workers} workers"
        );
    }
}

#[test]
fn retry_ladder_ndjson_is_identical_across_worker_counts() {
    // The full CLI path: a corpus with a flaky (top-once) program run
    // with retries must emit byte-identical NDJSON at --jobs 1 and 8.
    let dir = std::env::temp_dir().join(format!("mpl-ft-retry-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    let good = corpus::fig2_exchange().source;
    std::fs::write(dir.join("a.mpl"), &good).unwrap();
    std::fs::write(
        dir.join("b_flaky.mpl"),
        format!("// mpl:fault=top-once\n{good}"),
    )
    .unwrap();
    std::fs::write(dir.join("c.mpl"), &good).unwrap();
    let dir_arg = dir.to_str().unwrap().to_owned();

    let cli = |jobs: &str| {
        let args: Vec<String> = [
            "analyze-corpus",
            "--dir",
            &dir_arg,
            "--jobs",
            jobs,
            "--retries",
            "2",
            "--json",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let out = mpl_cli::run_command(&args, "").expect("analyze-corpus runs");
        assert_eq!(out.code, 0, "{}", out.text);
        out.text
    };
    let base = cli("1");
    assert!(base.contains("\"outcome\":\"degraded\""), "{base}");
    assert!(base.contains("\"attempts\":2"), "{base}");
    for jobs in ["4", "8"] {
        assert_eq!(base, cli(jobs), "NDJSON diverged at --jobs {jobs}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parse_failures_become_error_records_not_aborts() {
    let dir = std::env::temp_dir().join(format!("mpl-ft-parse-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    std::fs::write(dir.join("a_good.mpl"), corpus::fig2_exchange().source).unwrap();
    std::fs::write(dir.join("b_broken.mpl"), "send ->;").unwrap();
    let dir_arg = dir.to_str().unwrap().to_owned();

    let args: Vec<String> = [
        "analyze-corpus",
        "--dir",
        &dir_arg,
        "--json",
        "--keep-going",
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let out = mpl_cli::run_command(&args, "").expect("command runs despite the bad file");
    assert_eq!(out.code, 0, "{}", out.text);
    let lines: Vec<&str> = out.text.lines().collect();
    assert_eq!(lines.len(), 3, "{}", out.text);
    assert!(lines[0].contains("\"name\":\"a_good\""), "{}", lines[0]);
    assert!(
        lines[0].contains("\"outcome\":\"completed\""),
        "{}",
        lines[0]
    );
    assert!(lines[1].contains("\"name\":\"b_broken\""), "{}", lines[1]);
    assert!(lines[1].contains("\"outcome\":\"error\""), "{}", lines[1]);
    assert!(lines[1].contains("parse error"), "{}", lines[1]);
    assert!(lines[2].contains("\"errors\":1"), "{}", lines[2]);

    // Without --keep-going the parse failure is a nonzero exit.
    let strict_args: Vec<String> = ["analyze-corpus", "--dir", &dir_arg]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
    let strict = mpl_cli::run_command(&strict_args, "").expect("command still runs");
    assert_eq!(strict.code, 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn acceptance_corpus_panic_plus_spin_under_contention() {
    // The ISSUE acceptance scenario: an 8-program corpus with one
    // panicking and one spinning job, --jobs 4 --keep-going → exit 0,
    // 6 completed + 1 panicked + 1 timed-out, NDJSON identical at
    // --jobs 1 and --jobs 4. The deadline must be generous enough that
    // the good programs finish even while the spin job burns a core
    // (exchange_with_root alone needs ~90ms of debug-build CPU, and CI
    // containers may have a single core), yet finite so the spin job
    // reliably times out.
    let dir = std::env::temp_dir().join(format!("mpl-ft-accept-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create corpus dir");
    let programs = [
        corpus::fig2_exchange(),
        corpus::exchange_with_root(),
        corpus::nearest_neighbor_shift(),
        corpus::deadlock_pair(),
        corpus::fanout_broadcast(),
        corpus::message_leak(),
    ];
    for (i, prog) in programs.iter().enumerate() {
        std::fs::write(dir.join(format!("p{i}_{}.mpl", prog.name)), &prog.source).unwrap();
    }
    let good = &programs[0].source;
    std::fs::write(
        dir.join("x_panic.mpl"),
        format!("// mpl:fault=panic\n{good}"),
    )
    .unwrap();
    std::fs::write(dir.join("y_spin.mpl"), format!("// mpl:fault=spin\n{good}")).unwrap();
    let dir_arg = dir.to_str().unwrap().to_owned();

    let cli = |jobs: &str| {
        let args: Vec<String> = [
            "analyze-corpus",
            "--dir",
            &dir_arg,
            "--jobs",
            jobs,
            "--timeout-ms",
            "800",
            "--keep-going",
            "--json",
        ]
        .iter()
        .map(|s| (*s).to_owned())
        .collect();
        let out = mpl_cli::run_command(&args, "").expect("analyze-corpus runs");
        assert_eq!(out.code, 0, "{}", out.text);
        out.text
    };
    let base = cli("4");
    let lines: Vec<&str> = base.lines().collect();
    assert_eq!(lines.len(), 9, "{base}");
    let count = |tag: &str| {
        lines
            .iter()
            .filter(|l| l.contains(&format!("\"outcome\":\"{tag}\"")))
            .count()
    };
    assert_eq!(count("completed"), 6, "{base}");
    assert_eq!(count("panicked"), 1, "{base}");
    assert_eq!(count("timed-out"), 1, "{base}");
    assert!(
        lines[8]
            .contains("\"completed\":6,\"degraded\":0,\"timed_out\":1,\"panicked\":1,\"errors\":0"),
        "{}",
        lines[8]
    );
    assert_eq!(base, cli("1"), "NDJSON diverged between --jobs 1 and 4");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_panic_is_invisible_to_the_rest_of_the_batch() {
    // A clean batch and one with an extra poisoned job: every shared
    // record must be identical — the panic cannot perturb neighbors.
    let clean = {
        let mut batch = BatchAnalyzer::new().workers(4);
        for prog in corpus::all() {
            batch.push(BatchJob::new(
                prog.name,
                prog.program,
                AnalysisConfig::default(),
            ));
        }
        batch.run()
    };
    let poisoned = {
        let mut batch = BatchAnalyzer::new().workers(4);
        for prog in corpus::all() {
            batch.push(BatchJob::new(
                prog.name,
                prog.program,
                AnalysisConfig::default(),
            ));
        }
        batch.push(
            BatchJob::new(
                "poison",
                corpus::fig2_exchange().program,
                AnalysisConfig::default(),
            )
            .with_fault(Fault::Panic),
        );
        batch.run()
    };
    let n = clean.records.len();
    assert_eq!(poisoned.records.len(), n + 1);
    assert_eq!(
        fingerprint(&clean),
        fingerprint(&poisoned)[..n],
        "the poisoned job leaked into its neighbors"
    );
    assert!(matches!(
        poisoned.records[n].outcome,
        JobOutcome::Panicked { .. }
    ));
}

#[test]
fn timed_out_result_is_the_normalized_bare_top() {
    let bare = AnalysisResult::top(TopReason::Deadline);
    assert!(matches!(
        bare.verdict,
        Verdict::Top {
            reason: TopReason::Deadline
        }
    ));
    assert_eq!(bare.steps, 0);
    assert!(bare.matches.is_empty());
    assert!(bare.events.is_empty());
    assert!(bare.leaks.is_empty());
    assert!(bare.prints.is_empty());
}
